//! The per-slot alphabet of characteristic strings.

use std::fmt;

/// Outcome of the leader election for a single slot (paper Definition 1).
///
/// The derived [`Ord`] implements the paper's "more adversarial" total order
/// on individual symbols, `h < H < A` (see below Definition 6): an
/// adversarial slot gives the adversary strictly more power than a multiply
/// honest slot, which in turn gives more power than a uniquely honest one.
///
/// # Examples
///
/// ```
/// use multihonest_chars::Symbol;
///
/// assert!(Symbol::UniqueHonest < Symbol::MultiHonest);
/// assert!(Symbol::MultiHonest < Symbol::Adversarial);
/// assert!(Symbol::MultiHonest.is_honest());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol {
    /// `h`: the slot has exactly one leader, and that leader is honest.
    UniqueHonest,
    /// `H`: the slot has at least one honest leader and no adversarial one.
    ///
    /// The paper allows `H` to stand for *any* positive number of honest
    /// leaders; in particular the adversary may treat an `H` slot as if it
    /// were an `h` slot (see the remark after Definition 2).
    MultiHonest,
    /// `A`: the slot has at least one adversarial leader.
    Adversarial,
}

impl Symbol {
    /// All three symbols, in increasing "adversarial power" order.
    pub const ALL: [Symbol; 3] = [
        Symbol::UniqueHonest,
        Symbol::MultiHonest,
        Symbol::Adversarial,
    ];

    /// Returns `true` for `h` and `H` (the slot is *honest*).
    #[inline]
    pub fn is_honest(self) -> bool {
        !matches!(self, Symbol::Adversarial)
    }

    /// Returns `true` for `A` (the slot is *adversarial*).
    #[inline]
    pub fn is_adversarial(self) -> bool {
        matches!(self, Symbol::Adversarial)
    }

    /// The character used in the paper's notation: `h`, `H`, or `A`.
    #[inline]
    pub fn as_char(self) -> char {
        match self {
            Symbol::UniqueHonest => 'h',
            Symbol::MultiHonest => 'H',
            Symbol::Adversarial => 'A',
        }
    }

    /// Parses a single symbol character.
    ///
    /// Accepts exactly `h`, `H`, and `A`; returns `None` otherwise.
    #[inline]
    pub fn from_char(c: char) -> Option<Symbol> {
        match c {
            'h' => Some(Symbol::UniqueHonest),
            'H' => Some(Symbol::MultiHonest),
            'A' => Some(Symbol::Adversarial),
            _ => None,
        }
    }

    /// The walk step associated with this symbol: `+1` for `A`, `-1` for
    /// honest symbols (paper Section 5, the process `W_t`).
    #[inline]
    pub fn walk_step(self) -> i64 {
        if self.is_adversarial() {
            1
        } else {
            -1
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

/// Outcome of the leader election for a single slot in the Δ-synchronous
/// model (paper Definition 20), where slots may be *empty*.
///
/// The total order extends the synchronous one with `⊥` as the least
/// element: an empty slot is even less useful to the adversary than a
/// uniquely honest slot (it contributes nothing at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SemiSymbol {
    /// `⊥`: the slot was assigned to no participant.
    Empty,
    /// `h`: exactly one leader, honest.
    UniqueHonest,
    /// `H`: several honest leaders, no adversarial one.
    MultiHonest,
    /// `A`: at least one adversarial leader.
    Adversarial,
}

impl SemiSymbol {
    /// All four symbols.
    pub const ALL: [SemiSymbol; 4] = [
        SemiSymbol::Empty,
        SemiSymbol::UniqueHonest,
        SemiSymbol::MultiHonest,
        SemiSymbol::Adversarial,
    ];

    /// Returns `true` for `h` and `H`.
    #[inline]
    pub fn is_honest(self) -> bool {
        matches!(self, SemiSymbol::UniqueHonest | SemiSymbol::MultiHonest)
    }

    /// Returns `true` for `A`.
    #[inline]
    pub fn is_adversarial(self) -> bool {
        matches!(self, SemiSymbol::Adversarial)
    }

    /// Returns `true` for `⊥`.
    #[inline]
    pub fn is_empty_slot(self) -> bool {
        matches!(self, SemiSymbol::Empty)
    }

    /// The character used in this crate's notation: `.` for `⊥`, otherwise
    /// as in [`Symbol::as_char`].
    #[inline]
    pub fn as_char(self) -> char {
        match self {
            SemiSymbol::Empty => '.',
            SemiSymbol::UniqueHonest => 'h',
            SemiSymbol::MultiHonest => 'H',
            SemiSymbol::Adversarial => 'A',
        }
    }

    /// Parses a single symbol character (`.` or `_` for `⊥`).
    #[inline]
    pub fn from_char(c: char) -> Option<SemiSymbol> {
        match c {
            '.' | '_' => Some(SemiSymbol::Empty),
            'h' => Some(SemiSymbol::UniqueHonest),
            'H' => Some(SemiSymbol::MultiHonest),
            'A' => Some(SemiSymbol::Adversarial),
            _ => None,
        }
    }

    /// The corresponding synchronous symbol, or `None` for `⊥`.
    #[inline]
    pub fn to_symbol(self) -> Option<Symbol> {
        match self {
            SemiSymbol::Empty => None,
            SemiSymbol::UniqueHonest => Some(Symbol::UniqueHonest),
            SemiSymbol::MultiHonest => Some(Symbol::MultiHonest),
            SemiSymbol::Adversarial => Some(Symbol::Adversarial),
        }
    }
}

impl From<Symbol> for SemiSymbol {
    fn from(s: Symbol) -> SemiSymbol {
        match s {
            Symbol::UniqueHonest => SemiSymbol::UniqueHonest,
            Symbol::MultiHonest => SemiSymbol::MultiHonest,
            Symbol::Adversarial => SemiSymbol::Adversarial,
        }
    }
}

impl fmt::Display for SemiSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_roundtrip() {
        for s in Symbol::ALL {
            assert_eq!(Symbol::from_char(s.as_char()), Some(s));
        }
        assert_eq!(Symbol::from_char('x'), None);
        assert_eq!(Symbol::from_char('.'), None);
    }

    #[test]
    fn semi_symbol_roundtrip() {
        for s in SemiSymbol::ALL {
            assert_eq!(SemiSymbol::from_char(s.as_char()), Some(s));
        }
        assert_eq!(SemiSymbol::from_char('_'), Some(SemiSymbol::Empty));
        assert_eq!(SemiSymbol::from_char('x'), None);
    }

    #[test]
    fn adversarial_order_matches_paper() {
        // h < H < A (the order below Definition 6).
        assert!(Symbol::UniqueHonest < Symbol::MultiHonest);
        assert!(Symbol::MultiHonest < Symbol::Adversarial);
        assert!(SemiSymbol::Empty < SemiSymbol::UniqueHonest);
        assert!(SemiSymbol::UniqueHonest < SemiSymbol::MultiHonest);
        assert!(SemiSymbol::MultiHonest < SemiSymbol::Adversarial);
    }

    #[test]
    fn honesty_predicates() {
        assert!(Symbol::UniqueHonest.is_honest());
        assert!(Symbol::MultiHonest.is_honest());
        assert!(!Symbol::Adversarial.is_honest());
        assert!(Symbol::Adversarial.is_adversarial());
        assert!(!SemiSymbol::Empty.is_honest());
        assert!(!SemiSymbol::Empty.is_adversarial());
        assert!(SemiSymbol::Empty.is_empty_slot());
    }

    #[test]
    fn walk_steps() {
        assert_eq!(Symbol::UniqueHonest.walk_step(), -1);
        assert_eq!(Symbol::MultiHonest.walk_step(), -1);
        assert_eq!(Symbol::Adversarial.walk_step(), 1);
    }

    #[test]
    fn semi_to_symbol() {
        assert_eq!(SemiSymbol::Empty.to_symbol(), None);
        assert_eq!(
            SemiSymbol::MultiHonest.to_symbol(),
            Some(Symbol::MultiHonest)
        );
        assert_eq!(
            SemiSymbol::from(Symbol::Adversarial),
            SemiSymbol::Adversarial
        );
    }
}
