//! The ±1 random-walk view of a characteristic string.
//!
//! Section 5 of the paper analyses characteristic strings through the walk
//! `S_t = Σ_{i ≤ t} W_i` with `W_i = +1` when `w_i = A` and `W_i = −1`
//! otherwise. Catalan slots have a crisp description in terms of this walk
//! (see `multihonest-catalan`):
//!
//! * slot `s` is **left-Catalan** iff `S_s < S_j` for every `0 ≤ j < s`
//!   (the walk reaches a strict new minimum at `s`);
//! * slot `s` is **right-Catalan** iff `S_r < S_{s−1}` for every `r ≥ s`
//!   (the walk never again touches the pre-`s` level).
//!
//! [`Walk`] materialises `S` together with prefix-minimum and
//! suffix-maximum tables so that both predicates — and several quantities
//! used by the Δ-synchronous analysis (Bound 3) — are O(1) per query.

use crate::string::CharString;
use crate::symbol::Symbol;

/// The walk `S_0 = 0, S_t = S_{t−1} ± 1` induced by a characteristic string,
/// with O(1) prefix-minimum and suffix-maximum queries.
///
/// # Examples
///
/// ```
/// use multihonest_chars::{CharString, Walk};
///
/// let w: CharString = "hAAh".parse()?;
/// let walk = Walk::new(&w);
/// assert_eq!(walk.position(0), 0);
/// assert_eq!(walk.position(1), -1); // h
/// assert_eq!(walk.position(3), 1);  // h A A
/// assert_eq!(walk.position(4), 0);
/// assert_eq!(walk.prefix_min(3), -1);
/// assert_eq!(walk.suffix_max(1), 1);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// `s[t] = S_t` for `t ∈ 0..=n`.
    positions: Vec<i64>,
    /// `pmin[t] = min(S_0, …, S_t)`.
    prefix_min: Vec<i64>,
    /// `smax[t] = max(S_t, …, S_n)`.
    suffix_max: Vec<i64>,
}

impl Walk {
    /// Builds the walk for `w` in `O(|w|)`.
    pub fn new(w: &CharString) -> Walk {
        let n = w.len();
        let mut positions = Vec::with_capacity(n + 1);
        positions.push(0i64);
        let mut acc = 0i64;
        for &s in w.symbols() {
            acc += s.walk_step();
            positions.push(acc);
        }
        let mut prefix_min = positions.clone();
        for t in 1..=n {
            prefix_min[t] = prefix_min[t].min(prefix_min[t - 1]);
        }
        let mut suffix_max = positions.clone();
        for t in (0..n).rev() {
            suffix_max[t] = suffix_max[t].max(suffix_max[t + 1]);
        }
        Walk {
            positions,
            prefix_min,
            suffix_max,
        }
    }

    /// The walk built directly from symbols.
    pub fn from_symbols(symbols: &[Symbol]) -> Walk {
        Walk::new(&CharString::from_symbols(symbols.to_vec()))
    }

    /// The number of steps `n` (equals the string length).
    pub fn len(&self) -> usize {
        self.positions.len() - 1
    }

    /// Returns `true` if the walk has no steps.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `S_t`, for `t ∈ 0..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    #[inline]
    pub fn position(&self, t: usize) -> i64 {
        self.positions[t]
    }

    /// All positions `S_0..=S_n`.
    pub fn positions(&self) -> &[i64] {
        &self.positions
    }

    /// `min(S_0, …, S_t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    #[inline]
    pub fn prefix_min(&self, t: usize) -> i64 {
        self.prefix_min[t]
    }

    /// `max(S_t, …, S_n)`.
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    #[inline]
    pub fn suffix_max(&self, t: usize) -> i64 {
        self.suffix_max[t]
    }

    /// Returns `true` if the walk attains a strict new minimum at step `t`:
    /// `S_t < S_j` for all `j < t`. (This is the left-Catalan predicate for
    /// slot `t`.)
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `t > n`.
    #[inline]
    pub fn is_strict_new_min(&self, t: usize) -> bool {
        assert!(t >= 1 && t <= self.len(), "step {t} out of range");
        self.positions[t] < self.prefix_min[t - 1]
    }

    /// Returns `true` if the walk stays strictly below `S_{t−1}` from step
    /// `t` on: `S_r < S_{t−1}` for all `r ∈ t..=n`. (This is the
    /// right-Catalan predicate for slot `t`.)
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `t > n`.
    #[inline]
    pub fn stays_strictly_below_from(&self, t: usize) -> bool {
        assert!(t >= 1 && t <= self.len(), "step {t} out of range");
        self.suffix_max[t] < self.positions[t - 1]
    }

    /// The height `X_t = S_t − min_{i ≤ t} S_i` of the walk above its
    /// running minimum — the reflected walk of paper Section 5.1, whose
    /// stationary law is `X_∞` (Equation (9)).
    #[inline]
    pub fn height_above_min(&self, t: usize) -> i64 {
        self.positions[t] - self.prefix_min[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(s: &str) -> Walk {
        Walk::new(&s.parse().unwrap())
    }

    #[test]
    fn positions_by_hand() {
        let w = walk("hAAhh");
        assert_eq!(w.positions(), &[0, -1, 0, 1, 0, -1]);
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn prefix_min_suffix_max() {
        let w = walk("hAAhh");
        // S = 0, -1, 0, 1, 0, -1
        assert_eq!(w.prefix_min(0), 0);
        assert_eq!(w.prefix_min(1), -1);
        assert_eq!(w.prefix_min(3), -1);
        assert_eq!(w.prefix_min(5), -1);
        assert_eq!(w.suffix_max(0), 1);
        assert_eq!(w.suffix_max(4), 0);
        assert_eq!(w.suffix_max(5), -1);
    }

    #[test]
    fn strict_new_min() {
        let w = walk("hAAhh");
        // new strict minima at t=1 (-1 < 0) and t=5 (-1 < -1 is false!).
        assert!(w.is_strict_new_min(1));
        assert!(!w.is_strict_new_min(2));
        assert!(!w.is_strict_new_min(4));
        assert!(!w.is_strict_new_min(5)); // equals previous min, not strict
    }

    #[test]
    fn stays_below() {
        let w = walk("hhAh");
        // S = 0, -1, -2, -1, -2
        assert!(w.stays_strictly_below_from(1)); // suffix max from 1 is -1 < 0
        assert!(!w.stays_strictly_below_from(2)); // suffix max from 2 is -1 == S_1
        assert!(w.stays_strictly_below_from(4)); // S_4 = -2 < S_3 = -1
    }

    #[test]
    fn height_above_min_is_reflected_walk() {
        let w = walk("AAhhhA");
        // S:    0 1 2 1 0 -1 0
        // min:  0 0 0 0 0 -1 -1
        let expected = [0, 1, 2, 1, 0, 0, 1];
        for (t, e) in expected.iter().enumerate() {
            assert_eq!(w.height_above_min(t), *e, "t={t}");
        }
    }

    #[test]
    fn empty_walk() {
        let w = Walk::new(&CharString::new());
        assert!(w.is_empty());
        assert_eq!(w.position(0), 0);
        assert_eq!(w.prefix_min(0), 0);
        assert_eq!(w.suffix_max(0), 0);
    }
}
