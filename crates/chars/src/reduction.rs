//! The Δ-synchronous → synchronous reduction map `ρ_Δ`
//! (paper Definition 22).
//!
//! `ρ_Δ` deletes empty (`⊥`) slots and demotes to `A` every honest slot
//! that is *too close* to the next activity. The resulting synchronous
//! string satisfies two key properties the paper exploits:
//!
//! * **Proposition 3** — Δ-forks for `w` correspond to synchronous forks for
//!   `ρ_Δ(w)` under a label bijection `π`;
//! * **Proposition 4** — if `w` is i.i.d., then `ρ_Δ(w)` minus its last `Δ`
//!   symbols is i.i.d. with the law given by
//!   [`SemiSyncCondition::reduced_condition`].
//!
//! ## Two survival rules
//!
//! The paper's Definition 22 lets an honest symbol survive when the next
//! `Δ` symbols lie in `{⊥, A}`; the proof of Proposition 4, however,
//! decomposes the string into segments `e_i b_i` (a non-empty symbol
//! followed by its maximal `⊥`-run) and keeps an honest `e_i` only when
//! `|b_i| ≥ Δ`, i.e. when the next `Δ` symbols are **all empty**. Only the
//! segment rule makes the reduced symbols i.i.d. (each is a function of its
//! own segment), and it demotes strictly more slots, so Proposition 3's
//! fork correspondence still holds under it. We therefore expose both:
//!
//! * [`SurvivalRule::EmptyRun`] (default) — Proposition 4's rule;
//! * [`SurvivalRule::NoHonestWithin`] — the literal Definition 22 rule.
//!
//! [`SemiSyncCondition::reduced_condition`]:
//! crate::dist::SemiSyncCondition::reduced_condition

use crate::string::{CharString, SemiString};
use crate::symbol::{SemiSymbol, Symbol};

/// How an honest slot escapes demotion to `A` under `ρ_Δ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SurvivalRule {
    /// Survive iff the next `Δ` slots are all `⊥` (Proposition 4's segment
    /// rule; the default, because it yields an i.i.d. reduced prefix).
    #[default]
    EmptyRun,
    /// Survive iff the next `Δ` slots contain no honest symbol (the literal
    /// reading of Definition 22: `{⊥, A}^Δ ⪯ w`).
    NoHonestWithin,
}

/// The reduction map `ρ_Δ` for a fixed delay bound `Δ`.
///
/// # Examples
///
/// ```
/// use multihonest_chars::{Reduction, SemiString};
///
/// let w: SemiString = "h.hA.h".parse()?;
/// // Under the default rule with Δ = 1: slot 1 (h) is followed by ⊥ —
/// // survives; slot 3 (h) is followed by A — demoted; slot 6 (h) is the
/// // last slot — demoted.
/// let r = Reduction::new(1).apply(&w);
/// assert_eq!(r.reduced().to_string(), "hAAA");
/// assert_eq!(r.original_slot(1), 1);
/// assert_eq!(r.original_slot(4), 6);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reduction {
    delta: usize,
    rule: SurvivalRule,
}

impl Reduction {
    /// Creates the reduction map with delay bound `Δ` and the default
    /// (Proposition 4) survival rule.
    pub fn new(delta: usize) -> Reduction {
        Reduction {
            delta,
            rule: SurvivalRule::default(),
        }
    }

    /// Creates the reduction map with an explicit survival rule.
    pub fn with_rule(delta: usize, rule: SurvivalRule) -> Reduction {
        Reduction { delta, rule }
    }

    /// The delay bound `Δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The survival rule in force.
    pub fn rule(&self) -> SurvivalRule {
        self.rule
    }

    /// A streaming evaluator of this reduction: feed symbols one at a
    /// time, receive reduced symbols (with their original slots) as soon
    /// as their Δ-windows resolve. Emission-for-emission identical to
    /// [`Reduction::apply`] on the same string.
    pub fn streaming(&self) -> StreamingReduction {
        StreamingReduction {
            delta: self.delta,
            rule: self.rule,
            slot: 0,
            pending: Vec::new(),
        }
    }

    /// Applies `ρ_Δ` to `w`.
    pub fn apply(&self, w: &SemiString) -> ReducedString {
        let n = w.len();
        let mut reduced = CharString::new();
        let mut original_slots = Vec::new();
        let mut reduced_of_original = vec![None; n + 1];
        for (slot, sym) in w.iter_slots() {
            let out = match sym {
                SemiSymbol::Empty => None,
                SemiSymbol::Adversarial => Some(Symbol::Adversarial),
                SemiSymbol::UniqueHonest | SemiSymbol::MultiHonest => {
                    let window_ok = slot + self.delta <= n;
                    let survives = window_ok
                        && match self.rule {
                            SurvivalRule::EmptyRun => {
                                (slot + 1..=slot + self.delta).all(|t| w.get(t).is_empty_slot())
                            }
                            SurvivalRule::NoHonestWithin => {
                                (slot + 1..=slot + self.delta).all(|t| !w.get(t).is_honest())
                            }
                        };
                    if survives {
                        Some(sym.to_symbol().expect("honest symbol"))
                    } else {
                        Some(Symbol::Adversarial)
                    }
                }
            };
            if let Some(s) = out {
                reduced.push(s);
                original_slots.push(slot);
                reduced_of_original[slot] = Some(reduced.len());
            }
        }
        ReducedString {
            delta: self.delta,
            reduced,
            original_slots,
            reduced_of_original,
        }
    }
}

/// The result of applying [`Reduction::apply`]: the reduced synchronous
/// string together with the slot bijection `π` of Definition 22.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedString {
    delta: usize,
    reduced: CharString,
    /// `original_slots[j - 1]` = original slot of reduced slot `j`.
    original_slots: Vec<usize>,
    /// `reduced_of_original[t]` = reduced slot of original slot `t`, if any.
    reduced_of_original: Vec<Option<usize>>,
}

impl ReducedString {
    /// The delay bound `Δ` used.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The reduced string `w' = ρ_Δ(w)`.
    pub fn reduced(&self) -> &CharString {
        &self.reduced
    }

    /// The length `m = |w'|` (the number of non-empty slots of `w`).
    pub fn len(&self) -> usize {
        self.reduced.len()
    }

    /// Returns `true` when the reduced string is empty.
    pub fn is_empty(&self) -> bool {
        self.reduced.is_empty()
    }

    /// `π^{-1}(j)`: the original slot corresponding to reduced slot `j`
    /// (both 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range `1..=len()`.
    pub fn original_slot(&self, j: usize) -> usize {
        self.original_slots[j - 1]
    }

    /// `π(t)`: the reduced slot corresponding to original slot `t`, or
    /// `None` when slot `t` is empty (`⊥`).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range `1..=|w|`.
    pub fn reduced_slot(&self, t: usize) -> Option<usize> {
        self.reduced_of_original[t]
    }

    /// The *undistorted prefix* `w'^{⌊Δ}`: the reduced string minus its
    /// last `Δ` symbols. Under an i.i.d. source this prefix is i.i.d. with
    /// the law of Proposition 4; the trailing `Δ` symbols are biased
    /// towards `A`.
    pub fn stable_prefix(&self) -> CharString {
        let keep = self.reduced.len().saturating_sub(self.delta);
        self.reduced.prefix(keep)
    }
}

/// Streaming `ρ_Δ`: the per-symbol fold behind [`Reduction::streaming`].
///
/// An honest symbol's fate depends on the `Δ` slots after it, so the fold
/// buffers at most one *unresolved* honest slot (plus, under
/// [`SurvivalRule::NoHonestWithin`], any adversarial slots inside its
/// window, whose emission must wait to preserve slot order) and emits
/// each reduced symbol exactly when the batch map would have decided it:
///
/// * a second honest symbol inside the window demotes the front under
///   both rules (it is neither `⊥` nor outside `{⊥, A}`-freedom);
/// * an `A` inside the window demotes under `EmptyRun` only;
/// * once slot `s + Δ` has been consumed without a demotion, the front
///   survives;
/// * [`StreamingReduction::finish`] demotes any still-unresolved honest
///   slot — its window extends past the end of the string, exactly the
///   `slot + Δ ≤ n` condition of the batch map.
///
/// Emission lag is therefore at most `Δ` slots.
///
/// # Examples
///
/// ```
/// use multihonest_chars::{Reduction, SemiString, Symbol};
///
/// let w: SemiString = "h.hA.h".parse()?;
/// let mut stream = Reduction::new(1).streaming();
/// let mut out = Vec::new();
/// for (_, sym) in w.iter_slots() {
///     stream.push(sym, &mut out);
/// }
/// stream.finish(&mut out);
/// let slots: Vec<usize> = out.iter().map(|&(t, _)| t).collect();
/// assert_eq!(slots, [1, 3, 4, 6]);
/// assert_eq!(out[0].1, Symbol::UniqueHonest);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingReduction {
    delta: usize,
    rule: SurvivalRule,
    /// Slots consumed so far.
    slot: usize,
    /// Undecided emissions in slot order: when non-empty, the front is an
    /// unresolved honest slot; the rest are buffered `A` slots inside its
    /// window (only under [`SurvivalRule::NoHonestWithin`]).
    pending: Vec<(usize, SemiSymbol)>,
}

impl StreamingReduction {
    /// The delay bound `Δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The survival rule in force.
    pub fn rule(&self) -> SurvivalRule {
        self.rule
    }

    /// Slots consumed so far.
    pub fn slots_seen(&self) -> usize {
        self.slot
    }

    /// Consumes the next slot's symbol, appending every reduced symbol
    /// this resolves to `out` as `(original slot, reduced symbol)` pairs,
    /// in slot order.
    pub fn push(&mut self, s: SemiSymbol, out: &mut Vec<(usize, Symbol)>) {
        self.slot += 1;
        let t = self.slot;
        match s {
            SemiSymbol::Empty => {}
            SemiSymbol::Adversarial => {
                if self.rule == SurvivalRule::EmptyRun {
                    // A non-⊥ symbol in the window demotes the front.
                    self.flush(false, out);
                }
                if self.pending.is_empty() {
                    out.push((t, Symbol::Adversarial));
                } else {
                    self.pending.push((t, s));
                }
            }
            SemiSymbol::UniqueHonest | SemiSymbol::MultiHonest => {
                // A later honest symbol inside the window demotes the
                // front under both rules.
                self.flush(false, out);
                if self.delta == 0 {
                    out.push((t, s.to_symbol().expect("honest symbol")));
                } else {
                    self.pending.push((t, s));
                }
            }
        }
        if let Some(&(front, _)) = self.pending.first() {
            if t >= front + self.delta {
                // The full window has been consumed without a demotion.
                self.flush(true, out);
            }
        }
    }

    /// Ends the stream: an unresolved honest slot has no complete
    /// Δ-window inside the string and is demoted, as in the batch map.
    pub fn finish(mut self, out: &mut Vec<(usize, Symbol)>) {
        self.flush(false, out);
    }

    /// Emits the pending run: the front honest slot as itself when it
    /// `survived`, demoted to `A` otherwise; buffered window slots follow
    /// unchanged.
    fn flush(&mut self, survived: bool, out: &mut Vec<(usize, Symbol)>) {
        for (i, (t, sym)) in self.pending.drain(..).enumerate() {
            let reduced = if i == 0 && survived {
                sym.to_symbol().expect("front of the pending run is honest")
            } else if i == 0 {
                Symbol::Adversarial
            } else {
                debug_assert_eq!(sym, SemiSymbol::Adversarial);
                Symbol::Adversarial
            };
            out.push((t, reduced));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::SemiSyncCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn semi(s: &str) -> SemiString {
        s.parse().unwrap()
    }

    #[test]
    fn delta_zero_drops_empties_only() {
        let w = semi("h..HA.h");
        for rule in [SurvivalRule::EmptyRun, SurvivalRule::NoHonestWithin] {
            let r = Reduction::with_rule(0, rule).apply(&w);
            assert_eq!(r.reduced().to_string(), "hHAh");
            assert_eq!(r.reduced(), &w.drop_empty());
        }
    }

    #[test]
    fn honest_followed_by_honest_within_delta_is_demoted() {
        // Δ = 2: slot 1 (h) has slot 3 (H) within distance 2 → demoted
        // under either rule.
        let w = semi("h.H...");
        for rule in [SurvivalRule::EmptyRun, SurvivalRule::NoHonestWithin] {
            let r = Reduction::with_rule(2, rule).apply(&w);
            assert_eq!(r.reduced().to_string(), "AH", "rule {rule:?}");
        }
        // Δ = 1: slot 1's successor is ⊥ → survives under both rules.
        let r = Reduction::new(1).apply(&w);
        assert_eq!(r.reduced().to_string(), "hH");
    }

    #[test]
    fn trailing_honest_slots_are_demoted() {
        // The final honest slot lacks a Δ-window and is demoted (this is the
        // "distortion" Proposition 4 works around).
        let w = semi("hh");
        let r = Reduction::new(1).apply(&w);
        assert_eq!(r.reduced().to_string(), "AA");
        assert_eq!(
            Reduction::new(3).apply(&semi("h")).reduced().to_string(),
            "A"
        );
    }

    #[test]
    fn survival_rules_differ_exactly_on_nearby_adversarial_slots() {
        // Under the literal Definition 22 rule an A within the window does
        // not demote; under the Proposition 4 rule it does.
        let w = semi("hA.h.A");
        let lit = Reduction::with_rule(2, SurvivalRule::NoHonestWithin).apply(&w);
        assert_eq!(lit.reduced().to_string(), "hAhA");
        let seg = Reduction::with_rule(2, SurvivalRule::EmptyRun).apply(&w);
        assert_eq!(seg.reduced().to_string(), "AAAA");
        // The segment rule is always at least as adversarial, pointwise.
        assert!(crate::order::le(lit.reduced(), seg.reduced()));
    }

    #[test]
    fn pi_bijection_consistency() {
        let w = semi("h..A.H");
        let r = Reduction::new(1).apply(&w);
        assert_eq!(r.len(), 3);
        for j in 1..=r.len() {
            let t = r.original_slot(j);
            assert_eq!(r.reduced_slot(t), Some(j));
        }
        assert_eq!(r.reduced_slot(2), None);
        assert_eq!(r.reduced_slot(3), None);
        // π is increasing.
        let slots: Vec<usize> = (1..=r.len()).map(|j| r.original_slot(j)).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
    }

    #[test]
    fn stable_prefix_length() {
        let w = semi("h.hA.hhA");
        let r = Reduction::new(2).apply(&w);
        assert_eq!(r.stable_prefix().len(), r.len().saturating_sub(2));
        assert!(r.stable_prefix().is_prefix_of(r.reduced()));
    }

    /// Streaming/batch equivalence on one string × rule × Δ.
    fn assert_streaming_matches_batch(w: &SemiString, rule: SurvivalRule, delta: usize) {
        let reduction = Reduction::with_rule(delta, rule);
        let batch = reduction.apply(w);
        let want: Vec<(usize, Symbol)> = (1..=batch.len())
            .map(|j| (batch.original_slot(j), batch.reduced().get(j)))
            .collect();
        let mut stream = reduction.streaming();
        let mut out = Vec::new();
        for (_, sym) in w.iter_slots() {
            stream.push(sym, &mut out);
            let seen = stream.slots_seen();
            // Streamed output is always a prefix of the batch output, and
            // the emission lag is bounded by Δ: every original slot whose
            // window is complete has been decided.
            assert_eq!(out, want[..out.len()], "prefix mismatch on {w} at {seen}");
            let decided = want.iter().filter(|&&(t, _)| t + delta <= seen).count();
            assert!(
                out.len() >= decided,
                "lag exceeded Δ on {w} rule {rule:?} Δ={delta} at slot {seen}"
            );
        }
        stream.finish(&mut out);
        assert_eq!(
            out, want,
            "streaming ≠ batch on {w} rule {rule:?} Δ={delta}"
        );
    }

    #[test]
    fn streaming_matches_batch_on_crafted_strings() {
        for s in [
            "",
            ".",
            "h",
            "H",
            "A",
            "h.hA.h",
            "h..HA.h",
            "hh",
            "h.H...",
            "hA.h.A",
            "h..A.H",
            "h.hA.hhA",
            "....",
            "AAAA",
            "hhhh",
            "HHHH",
            "hAhAhA",
            "h...h...h",
            "Ah.A..hH.",
        ] {
            let w = semi(s);
            for rule in [SurvivalRule::EmptyRun, SurvivalRule::NoHonestWithin] {
                for delta in 0..=4 {
                    assert_streaming_matches_batch(&w, rule, delta);
                }
            }
        }
    }

    #[test]
    fn streaming_matches_batch_on_random_strings() {
        let cond = SemiSyncCondition::new(0.05, 0.01, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(0xda7a);
        for _ in 0..40 {
            let w = cond.sample(&mut rng, 200);
            for rule in [SurvivalRule::EmptyRun, SurvivalRule::NoHonestWithin] {
                for delta in [0, 1, 2, 3, 7] {
                    assert_streaming_matches_batch(&w, rule, delta);
                }
            }
        }
    }

    #[test]
    fn reduced_law_matches_proposition_4_empirically() {
        // Sample long i.i.d. semi-sync strings, reduce, and compare symbol
        // frequencies of the stable prefix with Proposition 4's law.
        let cond = SemiSyncCondition::new(0.05, 0.01, 0.02).unwrap();
        let delta = 3;
        let expected = cond.reduced_condition(delta).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let w = cond.sample(&mut rng, 2_000_000);
        let r = Reduction::new(delta).apply(&w);
        let prefix = r.stable_prefix();
        let m = prefix.len() as f64;
        let fh = prefix.count_unique_honest() as f64 / m;
        let fhh = prefix.count_multi_honest() as f64 / m;
        let fa = prefix.count_adversarial() as f64 / m;
        assert!((fh - expected.p_unique_honest()).abs() < 0.01, "fh = {fh}");
        assert!((fhh - expected.p_multi_honest()).abs() < 0.01, "fH = {fhh}");
        assert!((fa - expected.p_adversarial()).abs() < 0.01, "fa = {fa}");
    }
}
