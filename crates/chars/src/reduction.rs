//! The Δ-synchronous → synchronous reduction map `ρ_Δ`
//! (paper Definition 22).
//!
//! `ρ_Δ` deletes empty (`⊥`) slots and demotes to `A` every honest slot
//! that is *too close* to the next activity. The resulting synchronous
//! string satisfies two key properties the paper exploits:
//!
//! * **Proposition 3** — Δ-forks for `w` correspond to synchronous forks for
//!   `ρ_Δ(w)` under a label bijection `π`;
//! * **Proposition 4** — if `w` is i.i.d., then `ρ_Δ(w)` minus its last `Δ`
//!   symbols is i.i.d. with the law given by
//!   [`SemiSyncCondition::reduced_condition`].
//!
//! ## Two survival rules
//!
//! The paper's Definition 22 lets an honest symbol survive when the next
//! `Δ` symbols lie in `{⊥, A}`; the proof of Proposition 4, however,
//! decomposes the string into segments `e_i b_i` (a non-empty symbol
//! followed by its maximal `⊥`-run) and keeps an honest `e_i` only when
//! `|b_i| ≥ Δ`, i.e. when the next `Δ` symbols are **all empty**. Only the
//! segment rule makes the reduced symbols i.i.d. (each is a function of its
//! own segment), and it demotes strictly more slots, so Proposition 3's
//! fork correspondence still holds under it. We therefore expose both:
//!
//! * [`SurvivalRule::EmptyRun`] (default) — Proposition 4's rule;
//! * [`SurvivalRule::NoHonestWithin`] — the literal Definition 22 rule.
//!
//! [`SemiSyncCondition::reduced_condition`]:
//! crate::dist::SemiSyncCondition::reduced_condition

use crate::string::{CharString, SemiString};
use crate::symbol::{SemiSymbol, Symbol};

/// How an honest slot escapes demotion to `A` under `ρ_Δ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SurvivalRule {
    /// Survive iff the next `Δ` slots are all `⊥` (Proposition 4's segment
    /// rule; the default, because it yields an i.i.d. reduced prefix).
    #[default]
    EmptyRun,
    /// Survive iff the next `Δ` slots contain no honest symbol (the literal
    /// reading of Definition 22: `{⊥, A}^Δ ⪯ w`).
    NoHonestWithin,
}

/// The reduction map `ρ_Δ` for a fixed delay bound `Δ`.
///
/// # Examples
///
/// ```
/// use multihonest_chars::{Reduction, SemiString};
///
/// let w: SemiString = "h.hA.h".parse()?;
/// // Under the default rule with Δ = 1: slot 1 (h) is followed by ⊥ —
/// // survives; slot 3 (h) is followed by A — demoted; slot 6 (h) is the
/// // last slot — demoted.
/// let r = Reduction::new(1).apply(&w);
/// assert_eq!(r.reduced().to_string(), "hAAA");
/// assert_eq!(r.original_slot(1), 1);
/// assert_eq!(r.original_slot(4), 6);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reduction {
    delta: usize,
    rule: SurvivalRule,
}

impl Reduction {
    /// Creates the reduction map with delay bound `Δ` and the default
    /// (Proposition 4) survival rule.
    pub fn new(delta: usize) -> Reduction {
        Reduction {
            delta,
            rule: SurvivalRule::default(),
        }
    }

    /// Creates the reduction map with an explicit survival rule.
    pub fn with_rule(delta: usize, rule: SurvivalRule) -> Reduction {
        Reduction { delta, rule }
    }

    /// The delay bound `Δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The survival rule in force.
    pub fn rule(&self) -> SurvivalRule {
        self.rule
    }

    /// Applies `ρ_Δ` to `w`.
    pub fn apply(&self, w: &SemiString) -> ReducedString {
        let n = w.len();
        let mut reduced = CharString::new();
        let mut original_slots = Vec::new();
        let mut reduced_of_original = vec![None; n + 1];
        for (slot, sym) in w.iter_slots() {
            let out = match sym {
                SemiSymbol::Empty => None,
                SemiSymbol::Adversarial => Some(Symbol::Adversarial),
                SemiSymbol::UniqueHonest | SemiSymbol::MultiHonest => {
                    let window_ok = slot + self.delta <= n;
                    let survives = window_ok
                        && match self.rule {
                            SurvivalRule::EmptyRun => {
                                (slot + 1..=slot + self.delta).all(|t| w.get(t).is_empty_slot())
                            }
                            SurvivalRule::NoHonestWithin => {
                                (slot + 1..=slot + self.delta).all(|t| !w.get(t).is_honest())
                            }
                        };
                    if survives {
                        Some(sym.to_symbol().expect("honest symbol"))
                    } else {
                        Some(Symbol::Adversarial)
                    }
                }
            };
            if let Some(s) = out {
                reduced.push(s);
                original_slots.push(slot);
                reduced_of_original[slot] = Some(reduced.len());
            }
        }
        ReducedString {
            delta: self.delta,
            reduced,
            original_slots,
            reduced_of_original,
        }
    }
}

/// The result of applying [`Reduction::apply`]: the reduced synchronous
/// string together with the slot bijection `π` of Definition 22.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedString {
    delta: usize,
    reduced: CharString,
    /// `original_slots[j - 1]` = original slot of reduced slot `j`.
    original_slots: Vec<usize>,
    /// `reduced_of_original[t]` = reduced slot of original slot `t`, if any.
    reduced_of_original: Vec<Option<usize>>,
}

impl ReducedString {
    /// The delay bound `Δ` used.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The reduced string `w' = ρ_Δ(w)`.
    pub fn reduced(&self) -> &CharString {
        &self.reduced
    }

    /// The length `m = |w'|` (the number of non-empty slots of `w`).
    pub fn len(&self) -> usize {
        self.reduced.len()
    }

    /// Returns `true` when the reduced string is empty.
    pub fn is_empty(&self) -> bool {
        self.reduced.is_empty()
    }

    /// `π^{-1}(j)`: the original slot corresponding to reduced slot `j`
    /// (both 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range `1..=len()`.
    pub fn original_slot(&self, j: usize) -> usize {
        self.original_slots[j - 1]
    }

    /// `π(t)`: the reduced slot corresponding to original slot `t`, or
    /// `None` when slot `t` is empty (`⊥`).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range `1..=|w|`.
    pub fn reduced_slot(&self, t: usize) -> Option<usize> {
        self.reduced_of_original[t]
    }

    /// The *undistorted prefix* `w'^{⌊Δ}`: the reduced string minus its
    /// last `Δ` symbols. Under an i.i.d. source this prefix is i.i.d. with
    /// the law of Proposition 4; the trailing `Δ` symbols are biased
    /// towards `A`.
    pub fn stable_prefix(&self) -> CharString {
        let keep = self.reduced.len().saturating_sub(self.delta);
        self.reduced.prefix(keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::SemiSyncCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn semi(s: &str) -> SemiString {
        s.parse().unwrap()
    }

    #[test]
    fn delta_zero_drops_empties_only() {
        let w = semi("h..HA.h");
        for rule in [SurvivalRule::EmptyRun, SurvivalRule::NoHonestWithin] {
            let r = Reduction::with_rule(0, rule).apply(&w);
            assert_eq!(r.reduced().to_string(), "hHAh");
            assert_eq!(r.reduced(), &w.drop_empty());
        }
    }

    #[test]
    fn honest_followed_by_honest_within_delta_is_demoted() {
        // Δ = 2: slot 1 (h) has slot 3 (H) within distance 2 → demoted
        // under either rule.
        let w = semi("h.H...");
        for rule in [SurvivalRule::EmptyRun, SurvivalRule::NoHonestWithin] {
            let r = Reduction::with_rule(2, rule).apply(&w);
            assert_eq!(r.reduced().to_string(), "AH", "rule {rule:?}");
        }
        // Δ = 1: slot 1's successor is ⊥ → survives under both rules.
        let r = Reduction::new(1).apply(&w);
        assert_eq!(r.reduced().to_string(), "hH");
    }

    #[test]
    fn trailing_honest_slots_are_demoted() {
        // The final honest slot lacks a Δ-window and is demoted (this is the
        // "distortion" Proposition 4 works around).
        let w = semi("hh");
        let r = Reduction::new(1).apply(&w);
        assert_eq!(r.reduced().to_string(), "AA");
        assert_eq!(
            Reduction::new(3).apply(&semi("h")).reduced().to_string(),
            "A"
        );
    }

    #[test]
    fn survival_rules_differ_exactly_on_nearby_adversarial_slots() {
        // Under the literal Definition 22 rule an A within the window does
        // not demote; under the Proposition 4 rule it does.
        let w = semi("hA.h.A");
        let lit = Reduction::with_rule(2, SurvivalRule::NoHonestWithin).apply(&w);
        assert_eq!(lit.reduced().to_string(), "hAhA");
        let seg = Reduction::with_rule(2, SurvivalRule::EmptyRun).apply(&w);
        assert_eq!(seg.reduced().to_string(), "AAAA");
        // The segment rule is always at least as adversarial, pointwise.
        assert!(crate::order::le(lit.reduced(), seg.reduced()));
    }

    #[test]
    fn pi_bijection_consistency() {
        let w = semi("h..A.H");
        let r = Reduction::new(1).apply(&w);
        assert_eq!(r.len(), 3);
        for j in 1..=r.len() {
            let t = r.original_slot(j);
            assert_eq!(r.reduced_slot(t), Some(j));
        }
        assert_eq!(r.reduced_slot(2), None);
        assert_eq!(r.reduced_slot(3), None);
        // π is increasing.
        let slots: Vec<usize> = (1..=r.len()).map(|j| r.original_slot(j)).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
    }

    #[test]
    fn stable_prefix_length() {
        let w = semi("h.hA.hhA");
        let r = Reduction::new(2).apply(&w);
        assert_eq!(r.stable_prefix().len(), r.len().saturating_sub(2));
        assert!(r.stable_prefix().is_prefix_of(r.reduced()));
    }

    #[test]
    fn reduced_law_matches_proposition_4_empirically() {
        // Sample long i.i.d. semi-sync strings, reduce, and compare symbol
        // frequencies of the stable prefix with Proposition 4's law.
        let cond = SemiSyncCondition::new(0.05, 0.01, 0.02).unwrap();
        let delta = 3;
        let expected = cond.reduced_condition(delta).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let w = cond.sample(&mut rng, 2_000_000);
        let r = Reduction::new(delta).apply(&w);
        let prefix = r.stable_prefix();
        let m = prefix.len() as f64;
        let fh = prefix.count_unique_honest() as f64 / m;
        let fhh = prefix.count_multi_honest() as f64 / m;
        let fa = prefix.count_adversarial() as f64 / m;
        assert!((fh - expected.p_unique_honest()).abs() < 0.01, "fh = {fh}");
        assert!((fhh - expected.p_multi_honest()).abs() < 0.01, "fH = {fhh}");
        assert!((fa - expected.p_adversarial()).abs() < 0.01, "fa = {fa}");
    }
}
