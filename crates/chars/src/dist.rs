//! Distributions over characteristic strings.
//!
//! * [`BernoulliCondition`] — the `(ε, p_h)`-Bernoulli condition of paper
//!   Definition 7: i.i.d. symbols with `p_A = (1−ε)/2`,
//!   `p_H = 1 − p_A − p_h`.
//! * [`SemiSyncCondition`] — the four-symbol i.i.d. law of Theorem 7 for the
//!   Δ-synchronous setting, together with the induced law of the reduced
//!   string (Proposition 4).
//! * [`AdaptiveBiasSampler`] — a martingale-type sampler in which the
//!   per-slot adversarial probability may depend on history but never
//!   exceeds `(1−ε)/2`; the resulting law is stochastically dominated by the
//!   corresponding Bernoulli condition, which is exactly the situation the
//!   second halves of Theorems 1 and 2 address.

use std::fmt;

use rand::Rng;

use crate::string::{CharString, SemiString};
use crate::symbol::{SemiSymbol, Symbol};

/// Error constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionError {
    message: String,
}

impl DistributionError {
    fn new(message: impl Into<String>) -> DistributionError {
        DistributionError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.message)
    }
}

impl std::error::Error for DistributionError {}

/// The `(ε, p_h)`-Bernoulli condition (paper Definition 7).
///
/// Symbols `w_1 … w_T` are i.i.d. with
///
/// * `Pr[w_i = A] = p_A = (1 − ε)/2`,
/// * `Pr[w_i = h] = p_h`,
/// * `Pr[w_i = H] = p_H = 1 − p_A − p_h`,
///
/// for `ε ∈ (0, 1)` and `p_h ∈ [0, (1 + ε)/2]`. Note `p_h + p_H − p_A = ε`,
/// so `ε` is exactly the honest-majority margin in the optimal threshold
/// `p_h + p_H > p_A` of the paper.
///
/// # Examples
///
/// ```
/// use multihonest_chars::BernoulliCondition;
///
/// let d = BernoulliCondition::new(0.2, 0.5)?;
/// assert!((d.p_adversarial() - 0.4).abs() < 1e-12);
/// assert!((d.p_multi_honest() - 0.1).abs() < 1e-12);
/// # Ok::<(), multihonest_chars::DistributionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliCondition {
    epsilon: f64,
    p_h: f64,
}

impl BernoulliCondition {
    /// Creates the `(ε, p_h)`-Bernoulli condition.
    ///
    /// # Errors
    ///
    /// Returns an error unless `ε ∈ (0, 1)` and `p_h ∈ [0, (1 + ε)/2]`.
    pub fn new(epsilon: f64, p_h: f64) -> Result<BernoulliCondition, DistributionError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(DistributionError::new(format!(
                "epsilon = {epsilon} not in (0, 1)"
            )));
        }
        let p_h_max = (1.0 + epsilon) / 2.0;
        if !(0.0..=p_h_max + 1e-12).contains(&p_h) {
            return Err(DistributionError::new(format!(
                "p_h = {p_h} not in [0, (1 + ε)/2] = [0, {p_h_max}]"
            )));
        }
        Ok(BernoulliCondition {
            epsilon,
            p_h: p_h.min(p_h_max),
        })
    }

    /// Creates the condition of a paper Table-1 cell: `Pr[A] = alpha` and
    /// `Pr[h] = ratio · (1 − alpha)` (the table's `Pr[h]/(1 − α)` row
    /// parameter), the remainder multiply honest.
    ///
    /// # Errors
    ///
    /// Returns an error unless `alpha < 1/2` and `ratio ∈ [0, 1]` (so the
    /// three probabilities form a distribution).
    pub fn from_alpha_ratio(
        alpha: f64,
        ratio: f64,
    ) -> Result<BernoulliCondition, DistributionError> {
        let p_h = ratio * (1.0 - alpha);
        BernoulliCondition::from_probabilities(p_h, 1.0 - alpha - p_h, alpha)
    }

    /// Creates the condition from the three symbol probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error unless the probabilities are non-negative, sum to 1
    /// (within 1e-9), and `p_A < 1/2` (so that `ε = 1 − 2 p_A ∈ (0, 1)`).
    pub fn from_probabilities(
        p_h: f64,
        p_hh: f64,
        p_a: f64,
    ) -> Result<BernoulliCondition, DistributionError> {
        if p_h < 0.0 || p_hh < 0.0 || p_a < 0.0 {
            return Err(DistributionError::new("negative probability"));
        }
        let sum = p_h + p_hh + p_a;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(DistributionError::new(format!(
                "probabilities sum to {sum}, not 1"
            )));
        }
        let epsilon = 1.0 - 2.0 * p_a;
        BernoulliCondition::new(epsilon, p_h)
    }

    /// The honest-majority margin `ε = p_h + p_H − p_A`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// `p_h = Pr[w_i = h]`.
    pub fn p_unique_honest(&self) -> f64 {
        self.p_h
    }

    /// `p_H = Pr[w_i = H] = 1 − p_A − p_h`.
    pub fn p_multi_honest(&self) -> f64 {
        1.0 - self.p_adversarial() - self.p_h
    }

    /// `p_A = Pr[w_i = A] = (1 − ε)/2`.
    pub fn p_adversarial(&self) -> f64 {
        (1.0 - self.epsilon) / 2.0
    }

    /// `Pr[w_i = σ]` for each symbol.
    pub fn probability(&self, s: Symbol) -> f64 {
        match s {
            Symbol::UniqueHonest => self.p_unique_honest(),
            Symbol::MultiHonest => self.p_multi_honest(),
            Symbol::Adversarial => self.p_adversarial(),
        }
    }

    /// Returns `true` when the optimal threshold `p_h + p_H > p_A` holds.
    /// Always true for a valid condition (it is equivalent to `ε > 0`).
    pub fn satisfies_optimal_threshold(&self) -> bool {
        self.p_unique_honest() + self.p_multi_honest() > self.p_adversarial()
    }

    /// Returns `true` when the Praos/Genesis threshold `p_h − p_H > p_A`
    /// holds (paper Section 1 — the *stronger* assumption required by
    /// earlier e^{−Θ(k)} analyses).
    pub fn satisfies_praos_threshold(&self) -> bool {
        self.p_unique_honest() - self.p_multi_honest() > self.p_adversarial()
    }

    /// Returns `true` when the Sleepy/SnowWhite threshold `p_h > p_A` holds
    /// (paper Section 1 — required by earlier e^{−Θ(√k)} analyses).
    pub fn satisfies_snow_white_threshold(&self) -> bool {
        self.p_unique_honest() > self.p_adversarial()
    }

    /// Samples one symbol.
    pub fn sample_symbol<R: Rng + ?Sized>(&self, rng: &mut R) -> Symbol {
        let u: f64 = rng.gen();
        if u < self.p_adversarial() {
            Symbol::Adversarial
        } else if u < self.p_adversarial() + self.p_h {
            Symbol::UniqueHonest
        } else {
            Symbol::MultiHonest
        }
    }

    /// Samples a characteristic string of length `len`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> CharString {
        (0..len).map(|_| self.sample_symbol(rng)).collect()
    }
}

/// The i.i.d. four-symbol law of the Δ-synchronous setting
/// (paper Theorem 7).
///
/// Parameters: `f ∈ (0, 1)` is the *active-slot coefficient*
/// (`p_⊥ = 1 − f`); `p_A ∈ [0, f)` and `p_h ∈ (0, f − p_A]`, with
/// `p_H = f − p_A − p_h`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemiSyncCondition {
    f: f64,
    p_a: f64,
    p_h: f64,
}

impl SemiSyncCondition {
    /// Creates the condition.
    ///
    /// # Errors
    ///
    /// Returns an error unless `f ∈ (0, 1)`, `0 ≤ p_A < f`, and
    /// `0 < p_h ≤ f − p_A`.
    pub fn new(f: f64, p_a: f64, p_h: f64) -> Result<SemiSyncCondition, DistributionError> {
        if !(f > 0.0 && f < 1.0) {
            return Err(DistributionError::new(format!("f = {f} not in (0, 1)")));
        }
        if !(0.0..f).contains(&p_a) {
            return Err(DistributionError::new(format!("p_A = {p_a} not in [0, f)")));
        }
        if !(p_h > 0.0 && p_h <= f - p_a + 1e-12) {
            return Err(DistributionError::new(format!(
                "p_h = {p_h} not in (0, f − p_A]"
            )));
        }
        Ok(SemiSyncCondition {
            f,
            p_a,
            p_h: p_h.min(f - p_a),
        })
    }

    /// The active-slot coefficient `f = 1 − p_⊥`.
    pub fn f(&self) -> f64 {
        self.f
    }

    /// `Pr[w_i = ⊥] = 1 − f`.
    pub fn p_empty(&self) -> f64 {
        1.0 - self.f
    }

    /// `Pr[w_i = A]`.
    pub fn p_adversarial(&self) -> f64 {
        self.p_a
    }

    /// `Pr[w_i = h]`.
    pub fn p_unique_honest(&self) -> f64 {
        self.p_h
    }

    /// `Pr[w_i = H] = f − p_A − p_h`.
    pub fn p_multi_honest(&self) -> f64 {
        self.f - self.p_a - self.p_h
    }

    /// `Pr[w_i = σ]` for each symbol.
    pub fn probability(&self, s: SemiSymbol) -> f64 {
        match s {
            SemiSymbol::Empty => self.p_empty(),
            SemiSymbol::UniqueHonest => self.p_unique_honest(),
            SemiSymbol::MultiHonest => self.p_multi_honest(),
            SemiSymbol::Adversarial => self.p_adversarial(),
        }
    }

    /// `β = (1 − f)^Δ`: the probability that Δ consecutive slots are all
    /// empty — the chance an honest slot *survives* the reduction map with
    /// an honest label (paper Theorem 7 writes this as `β`, Proposition 4
    /// as `α`).
    pub fn beta(&self, delta: usize) -> f64 {
        (1.0 - self.f).powi(delta as i32)
    }

    /// The induced i.i.d. law of the reduced string `ρ_Δ(w)` **excluding its
    /// distorted last Δ symbols** (paper Proposition 4, Equation (22)):
    ///
    /// * `Pr[x_i = h] = p_h · β/f`,
    /// * `Pr[x_i = H] = p_H · β/f`,
    /// * `Pr[x_i = A] = 1 − β + p_A · β/f`.
    ///
    /// # Errors
    ///
    /// Returns an error when the reduced adversarial probability reaches
    /// `1/2`, i.e. when condition (20) of Theorem 7 fails for this `Δ` —
    /// the Δ-synchronous analysis then provides no guarantee.
    pub fn reduced_condition(&self, delta: usize) -> Result<BernoulliCondition, DistributionError> {
        let beta = self.beta(delta);
        let scale = beta / self.f;
        let qh = self.p_h * scale;
        let qhh = self.p_multi_honest() * scale;
        let qa = 1.0 - beta + self.p_a * scale;
        BernoulliCondition::from_probabilities(qh, qhh, qa)
    }

    /// The effective honest-majority margin of the reduced string:
    /// `ε_Δ = 1 − 2(1 − (1 − p_A/f)β)`, or an error when non-positive
    /// (condition (20) with equality corresponds to `ε_Δ = ε`).
    pub fn effective_epsilon(&self, delta: usize) -> Result<f64, DistributionError> {
        Ok(self.reduced_condition(delta)?.epsilon())
    }

    /// Samples one symbol.
    pub fn sample_symbol<R: Rng + ?Sized>(&self, rng: &mut R) -> SemiSymbol {
        let u: f64 = rng.gen();
        if u < self.p_empty() {
            SemiSymbol::Empty
        } else if u < self.p_empty() + self.p_a {
            SemiSymbol::Adversarial
        } else if u < self.p_empty() + self.p_a + self.p_h {
            SemiSymbol::UniqueHonest
        } else {
            SemiSymbol::MultiHonest
        }
    }

    /// Samples a semi-synchronous characteristic string of length `len`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> SemiString {
        (0..len).map(|_| self.sample_symbol(rng)).collect()
    }
}

/// A history-dependent (martingale-type) sampler in which
/// `Pr[w_i = A | w_1 … w_{i−1}] ≤ (1 − ε)/2` always holds, but the exact
/// adversarial probability wanders with history.
///
/// This models the "weaker martingale-type guarantee" of adaptive
/// adversaries discussed below Definition 5 (e.g. Ouroboros Praos). The
/// induced string law is stochastically dominated by
/// [`BernoulliCondition`] with the same `(ε, p_h)` — dominance that the
/// second halves of Theorems 1/2 convert into identical security bounds,
/// and that our property tests check empirically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveBiasSampler {
    base: BernoulliCondition,
    /// Fraction of the adversarial budget the sampler gives up after an
    /// adversarial slot (history dependence strength), in `[0, 1]`.
    backoff: f64,
}

impl AdaptiveBiasSampler {
    /// Creates a sampler with ceiling condition `base` and the given
    /// backoff in `[0, 1]`: after each adversarial slot the adversarial
    /// probability of the next slot is reduced by this fraction (mass moves
    /// to `H`), then relaxes back.
    ///
    /// # Errors
    ///
    /// Returns an error when `backoff ∉ [0, 1]`.
    pub fn new(
        base: BernoulliCondition,
        backoff: f64,
    ) -> Result<AdaptiveBiasSampler, DistributionError> {
        if !(0.0..=1.0).contains(&backoff) {
            return Err(DistributionError::new(format!(
                "backoff = {backoff} not in [0, 1]"
            )));
        }
        Ok(AdaptiveBiasSampler { base, backoff })
    }

    /// The dominating Bernoulli condition.
    pub fn ceiling(&self) -> BernoulliCondition {
        self.base
    }

    /// Samples a string of length `len`; adversarial probability is
    /// `p_A · (1 − backoff)` in the slot right after an adversarial slot
    /// and `p_A` otherwise (never exceeding the ceiling).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> CharString {
        let p_a_max = self.base.p_adversarial();
        let p_h = self.base.p_unique_honest();
        let mut last_adversarial = false;
        let mut out = CharString::new();
        for _ in 0..len {
            let p_a = if last_adversarial {
                p_a_max * (1.0 - self.backoff)
            } else {
                p_a_max
            };
            let u: f64 = rng.gen();
            let s = if u < p_a {
                Symbol::Adversarial
            } else if u < p_a + p_h {
                Symbol::UniqueHonest
            } else {
                Symbol::MultiHonest
            };
            last_adversarial = s.is_adversarial();
            out.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_parameters() {
        let d = BernoulliCondition::new(0.2, 0.3).unwrap();
        assert!((d.p_adversarial() - 0.4).abs() < 1e-12);
        assert!((d.p_unique_honest() - 0.3).abs() < 1e-12);
        assert!((d.p_multi_honest() - 0.3).abs() < 1e-12);
        let total: f64 = Symbol::ALL.iter().map(|s| d.probability(*s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // epsilon really is p_h + p_H − p_A.
        let eps = d.p_unique_honest() + d.p_multi_honest() - d.p_adversarial();
        assert!((eps - d.epsilon()).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_validation() {
        assert!(BernoulliCondition::new(0.0, 0.1).is_err());
        assert!(BernoulliCondition::new(1.0, 0.1).is_err());
        assert!(BernoulliCondition::new(0.2, 0.7).is_err()); // p_h > (1+ε)/2
        assert!(BernoulliCondition::new(0.2, -0.1).is_err());
        assert!(BernoulliCondition::new(0.2, 0.6).is_ok()); // exactly (1+ε)/2
    }

    #[test]
    fn from_probabilities_roundtrip() {
        let d = BernoulliCondition::from_probabilities(0.25, 0.35, 0.4).unwrap();
        assert!((d.epsilon() - 0.2).abs() < 1e-12);
        assert!((d.p_unique_honest() - 0.25).abs() < 1e-12);
        assert!(BernoulliCondition::from_probabilities(0.3, 0.3, 0.3).is_err());
        assert!(BernoulliCondition::from_probabilities(0.2, 0.2, 0.6).is_err());
        // p_A > 1/2
    }

    #[test]
    fn threshold_hierarchy() {
        // Optimal threshold holds for every valid condition.
        let d = BernoulliCondition::new(0.1, 0.05).unwrap();
        assert!(d.satisfies_optimal_threshold());
        // With p_h tiny and p_H large, neither prior threshold holds: this
        // is exactly the regime only the paper's analysis covers.
        assert!(!d.satisfies_praos_threshold());
        assert!(!d.satisfies_snow_white_threshold());
        // With all honest slots unique, Praos threshold coincides.
        let d = BernoulliCondition::new(0.1, 0.55).unwrap();
        assert!(d.satisfies_praos_threshold());
        assert!(d.satisfies_snow_white_threshold());
    }

    #[test]
    fn sampling_frequencies_close_to_probabilities() {
        let d = BernoulliCondition::new(0.3, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let w = d.sample(&mut rng, n);
        let fh = w.count_unique_honest() as f64 / n as f64;
        let fhh = w.count_multi_honest() as f64 / n as f64;
        let fa = w.count_adversarial() as f64 / n as f64;
        assert!((fh - d.p_unique_honest()).abs() < 0.01, "fh = {fh}");
        assert!((fhh - d.p_multi_honest()).abs() < 0.01, "fH = {fhh}");
        assert!((fa - d.p_adversarial()).abs() < 0.01, "fA = {fa}");
    }

    #[test]
    fn semi_sync_parameters() {
        let d = SemiSyncCondition::new(0.1, 0.04, 0.03).unwrap();
        assert!((d.p_empty() - 0.9).abs() < 1e-12);
        assert!((d.p_multi_honest() - 0.03).abs() < 1e-12);
        let total: f64 = SemiSymbol::ALL.iter().map(|s| d.probability(*s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn semi_sync_validation() {
        assert!(SemiSyncCondition::new(1.0, 0.1, 0.1).is_err());
        assert!(SemiSyncCondition::new(0.1, 0.1, 0.05).is_err()); // p_A ≥ f
        assert!(SemiSyncCondition::new(0.1, 0.02, 0.0).is_err()); // p_h must be > 0
        assert!(SemiSyncCondition::new(0.1, 0.02, 0.09).is_err()); // p_h > f − p_A
    }

    #[test]
    fn reduced_condition_matches_proposition_4() {
        let d = SemiSyncCondition::new(0.1, 0.02, 0.05).unwrap();
        let delta = 4;
        let beta = d.beta(delta);
        assert!((beta - 0.9f64.powi(4)).abs() < 1e-12);
        let r = d.reduced_condition(delta).unwrap();
        let scale = beta / 0.1;
        assert!((r.p_unique_honest() - 0.05 * scale).abs() < 1e-12);
        assert!((r.p_multi_honest() - 0.03 * scale).abs() < 1e-12);
        assert!((r.p_adversarial() - (1.0 - beta + 0.02 * scale)).abs() < 1e-12);
    }

    #[test]
    fn reduced_condition_fails_for_huge_delta() {
        // With Δ enormous, every honest slot is within Δ of another active
        // slot; the reduced adversarial rate exceeds 1/2 and the analysis
        // must refuse.
        let d = SemiSyncCondition::new(0.4, 0.1, 0.2).unwrap();
        assert!(d.reduced_condition(50).is_err());
        assert!(d.effective_epsilon(0).is_ok());
    }

    #[test]
    fn adaptive_sampler_stays_under_ceiling() {
        let base = BernoulliCondition::new(0.2, 0.3).unwrap();
        let s = AdaptiveBiasSampler::new(base, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let w = s.sample(&mut rng, 100_000);
        let fa = w.count_adversarial() as f64 / w.len() as f64;
        // The realized adversarial frequency must be below the ceiling p_A.
        assert!(fa <= base.p_adversarial() + 0.01, "fa = {fa}");
        assert!(AdaptiveBiasSampler::new(base, 1.5).is_err());
    }
}
