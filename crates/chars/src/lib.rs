//! # multihonest-chars
//!
//! Characteristic strings and their stochastic models, as defined in
//! *Consistency of Proof-of-Stake Blockchains with Concurrent Honest Slot
//! Leaders* (Kiayias, Quader, Russell; ICDCS 2020).
//!
//! A *characteristic string* records, for each slot of a Proof-of-Stake
//! execution, the outcome of the leader-election process:
//!
//! * [`Symbol::UniqueHonest`] (`h`) — exactly one honest leader;
//! * [`Symbol::MultiHonest`] (`H`) — several honest leaders, no adversarial;
//! * [`Symbol::Adversarial`] (`A`) — at least one adversarial leader.
//!
//! The semi-synchronous model additionally uses [`SemiSymbol::Empty`] (`⊥`)
//! for slots with no leader at all (paper Definition 20).
//!
//! This crate provides:
//!
//! * [`CharString`] / [`SemiString`] — the string types, with parsing,
//!   display, interval statistics ([`PrefixCounts`]) and heaviness predicates
//!   (paper Section 3.1);
//! * the paper's partial order on strings and stochastic-dominance helpers
//!   (paper Definition 6) in [`order`];
//! * the `(ε, p_h)`-Bernoulli condition and related samplers (paper
//!   Definition 7, Theorem 7) in [`dist`];
//! * the Δ-synchronous → synchronous reduction map `ρ_Δ` (paper
//!   Definition 22) in [`reduction`];
//! * the ±1 random-walk view of a string in [`walk`], the engine behind the
//!   linear-time Catalan-slot scans of `multihonest-catalan`.
//!
//! ## Slot numbering
//!
//! Slots are **1-based** throughout, matching the paper: a string of length
//! `n` describes slots `1..=n`, and slot `0` is reserved for the genesis
//! block.
//!
//! ## Example
//!
//! ```
//! use multihonest_chars::{CharString, Symbol};
//!
//! let w: CharString = "hAhAhHAAH".parse()?;
//! assert_eq!(w.len(), 9);
//! assert_eq!(w.get(6), Symbol::MultiHonest);
//! // The whole string has 5 honest slots and 4 adversarial ones:
//! let c = w.prefix_counts();
//! assert_eq!(c.honest(1, 9), 5);
//! assert_eq!(c.adversarial(1, 9), 4);
//! # Ok::<(), multihonest_chars::ParseCharStringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod interval;
pub mod order;
pub mod reduction;
pub mod string;
pub mod symbol;
pub mod walk;

pub use crate::dist::{BernoulliCondition, DistributionError, SemiSyncCondition};
pub use crate::interval::PrefixCounts;
pub use crate::reduction::{ReducedString, Reduction, StreamingReduction};
pub use crate::string::{CharString, ParseCharStringError, SemiString};
pub use crate::symbol::{SemiSymbol, Symbol};
pub use crate::walk::Walk;
