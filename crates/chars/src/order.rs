//! The "more adversarial" partial order on characteristic strings and
//! stochastic-dominance helpers (paper Definition 6 and the order defined
//! below it).
//!
//! For strings `x, y ∈ {h, H, A}^T` of equal length, `x ≤ y` iff `x_i ≤ y_i`
//! pointwise under `h < H < A`. The key monotonicity fact (used in the
//! proofs of Theorems 1 and 2) is: any fork for `x` is also a fork for any
//! `y ≥ x`, so every settlement violation for `x` is one for `y`. The set of
//! "bad" strings is therefore *monotone*, and stochastic dominance between
//! string distributions transfers violation-probability bounds.

use crate::string::CharString;
use crate::symbol::Symbol;

/// Compares two equal-length strings under the pointwise partial order.
///
/// Returns:
/// * `Some(Ordering::Less)` if `x ≤ y` and `x ≠ y` (`y` is strictly more
///   adversarial);
/// * `Some(Ordering::Equal)` if `x = y`;
/// * `Some(Ordering::Greater)` if `y ≤ x` and `x ≠ y`;
/// * `None` if the strings are incomparable or have different lengths.
///
/// # Examples
///
/// ```
/// use std::cmp::Ordering;
/// use multihonest_chars::{order, CharString};
///
/// let x: CharString = "hHh".parse()?;
/// let y: CharString = "hAh".parse()?;
/// let z: CharString = "Ahh".parse()?;
/// assert_eq!(order::partial_cmp(&x, &y), Some(Ordering::Less));
/// assert_eq!(order::partial_cmp(&x, &z), None);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
pub fn partial_cmp(x: &CharString, y: &CharString) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    if x.len() != y.len() {
        return None;
    }
    let mut seen_less = false;
    let mut seen_greater = false;
    for (a, b) in x.symbols().iter().zip(y.symbols()) {
        match a.cmp(b) {
            Ordering::Less => seen_less = true,
            Ordering::Greater => seen_greater = true,
            Ordering::Equal => {}
        }
        if seen_less && seen_greater {
            return None;
        }
    }
    Some(match (seen_less, seen_greater) {
        (false, false) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (true, true) => unreachable!(),
    })
}

/// Returns `true` iff `x ≤ y` in the pointwise order (`y` is at least as
/// adversarial as `x` in every slot). Strings of different length are
/// incomparable.
pub fn le(x: &CharString, y: &CharString) -> bool {
    x.len() == y.len() && x.symbols().iter().zip(y.symbols()).all(|(a, b)| a <= b)
}

/// Replaces every `h` by `H`: the least "more adversarial" relaxation that
/// erases unique honesty. Useful for dominance tests — the result is the
/// minimal bivalent string above `w`.
pub fn relax_unique_honest(w: &CharString) -> CharString {
    w.symbols()
        .iter()
        .map(|s| match s {
            Symbol::UniqueHonest => Symbol::MultiHonest,
            other => *other,
        })
        .collect()
}

/// All strings obtained from `w` by upgrading exactly one symbol one step
/// (`h → H` or `H → A`): the covering relation of the partial order.
pub fn covers(w: &CharString) -> Vec<CharString> {
    let mut out = Vec::new();
    for (i, &s) in w.symbols().iter().enumerate() {
        let up = match s {
            Symbol::UniqueHonest => Some(Symbol::MultiHonest),
            Symbol::MultiHonest => Some(Symbol::Adversarial),
            Symbol::Adversarial => None,
        };
        if let Some(up) = up {
            let mut v = w.symbols().to_vec();
            v[i] = up;
            out.push(CharString::from_symbols(v));
        }
    }
    out
}

/// Empirical one-sided stochastic-dominance check for scalar statistics.
///
/// Given samples of a statistic under two distributions, returns `true`
/// when the empirical CDF of `dominated` is everywhere ≥ the empirical CDF
/// of `dominating` up to slack `tolerance` — i.e. `dominating` puts at least
/// as much mass on large values (Definition 6 specialised to `ℝ`).
///
/// This is a *testing* utility (used by property tests to sanity-check
/// samplers), not a statistical test with guarantees.
pub fn dominates_empirically(dominating: &[f64], dominated: &[f64], tolerance: f64) -> bool {
    let mut a: Vec<f64> = dominating.to_vec();
    let mut b: Vec<f64> = dominated.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN in samples"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN in samples"));
    if a.is_empty() || b.is_empty() {
        return true;
    }
    // For each threshold Λ taken from either sample, compare
    // Pr[dominating ≥ Λ] ≥ Pr[dominated ≥ Λ] − tolerance.
    let thresholds: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    for lambda in thresholds {
        let pa = tail_fraction(&a, lambda);
        let pb = tail_fraction(&b, lambda);
        if pa + tolerance < pb {
            return false;
        }
    }
    true
}

fn tail_fraction(sorted: &[f64], lambda: f64) -> f64 {
    // Fraction of entries ≥ lambda.
    let idx = sorted.partition_point(|v| *v < lambda);
    (sorted.len() - idx) as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn s(x: &str) -> CharString {
        x.parse().unwrap()
    }

    #[test]
    fn pointwise_order_basics() {
        assert!(le(&s("hhh"), &s("hhh")));
        assert!(le(&s("hhh"), &s("HhA")));
        assert!(!le(&s("A"), &s("h")));
        assert!(!le(&s("hh"), &s("hhh"))); // different lengths incomparable
        assert_eq!(partial_cmp(&s("hH"), &s("hH")), Some(Ordering::Equal));
        assert_eq!(partial_cmp(&s("hH"), &s("HH")), Some(Ordering::Less));
        assert_eq!(partial_cmp(&s("AH"), &s("hH")), Some(Ordering::Greater));
        assert_eq!(partial_cmp(&s("Ah"), &s("hA")), None);
        assert_eq!(partial_cmp(&s("h"), &s("hh")), None);
    }

    #[test]
    fn relaxation_is_minimal_bivalent_upper_bound() {
        let w = s("hAHh");
        let r = relax_unique_honest(&w);
        assert_eq!(r, s("HAHH"));
        assert!(le(&w, &r));
        assert!(r.is_bivalent());
    }

    #[test]
    fn covers_upgrades_one_symbol() {
        let w = s("hA");
        let cov = covers(&w);
        assert_eq!(cov, vec![s("HA")]);
        let w = s("hH");
        let cov = covers(&w);
        assert_eq!(cov, vec![s("HH"), s("hA")]);
        for c in covers(&s("hHA")) {
            assert_eq!(partial_cmp(&s("hHA"), &c), Some(Ordering::Less));
        }
    }

    #[test]
    fn empirical_dominance_sanity() {
        let lo = [0.0, 1.0, 1.0, 2.0];
        let hi = [1.0, 2.0, 2.0, 3.0];
        assert!(dominates_empirically(&hi, &lo, 0.0));
        assert!(!dominates_empirically(&lo, &hi, 0.0));
        // A distribution dominates itself.
        assert!(dominates_empirically(&lo, &lo, 0.0));
        // Tolerance forgives small violations.
        assert!(dominates_empirically(&lo, &hi, 1.0));
    }
}
