//! Characteristic strings over `{h, H, A}` and `{⊥, h, H, A}`.

use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use crate::interval::PrefixCounts;
use crate::symbol::{SemiSymbol, Symbol};

/// Error returned when parsing a characteristic string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCharStringError {
    /// 0-based byte position of the offending character.
    pub position: usize,
    /// The offending character.
    pub character: char,
}

impl fmt::Display for ParseCharStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid characteristic symbol {:?} at position {}",
            self.character, self.position
        )
    }
}

impl std::error::Error for ParseCharStringError {}

/// A characteristic string `w ∈ {h, H, A}^n` (paper Definition 1).
///
/// Slots are 1-based: `w.get(t)` is the symbol of slot `sl_t` for
/// `t ∈ 1..=n`.
///
/// A *bivalent* characteristic string (paper Definition 8) is simply a
/// `CharString` containing no `h` symbols; see [`CharString::is_bivalent`].
///
/// # Examples
///
/// ```
/// use multihonest_chars::{CharString, Symbol};
///
/// let w: CharString = "hAH".parse()?;
/// assert_eq!(w.get(1), Symbol::UniqueHonest);
/// assert_eq!(w.get(2), Symbol::Adversarial);
/// assert_eq!(w.get(3), Symbol::MultiHonest);
/// assert_eq!(w.to_string(), "hAH");
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct CharString {
    symbols: Vec<Symbol>,
}

impl CharString {
    /// Creates the empty string `ε`.
    pub fn new() -> CharString {
        CharString::default()
    }

    /// Creates a string from a vector of symbols (slot 1 first).
    pub fn from_symbols(symbols: Vec<Symbol>) -> CharString {
        CharString { symbols }
    }

    /// The number of slots `n`.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if this is the empty string `ε`.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol of slot `slot` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is `0` or exceeds [`len`](Self::len).
    #[inline]
    pub fn get(&self, slot: usize) -> Symbol {
        assert!(
            slot >= 1 && slot <= self.symbols.len(),
            "slot {slot} out of range 1..={}",
            self.symbols.len()
        );
        self.symbols[slot - 1]
    }

    /// The symbol of slot `slot`, or `None` when out of range.
    #[inline]
    pub fn try_get(&self, slot: usize) -> Option<Symbol> {
        if slot >= 1 {
            self.symbols.get(slot - 1).copied()
        } else {
            None
        }
    }

    /// Appends a symbol, extending the string by one slot.
    pub fn push(&mut self, s: Symbol) {
        self.symbols.push(s);
    }

    /// The underlying symbols, slot 1 first.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Iterates over `(slot, symbol)` pairs, slots 1-based and increasing.
    pub fn iter_slots(&self) -> impl Iterator<Item = (usize, Symbol)> + '_ {
        self.symbols
            .iter()
            .copied()
            .enumerate()
            .map(|(i, s)| (i + 1, s))
    }

    /// Returns the prefix covering slots `1..=len` (i.e. `w[1..=len]`).
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn prefix(&self, len: usize) -> CharString {
        assert!(
            len <= self.len(),
            "prefix length {len} exceeds {}",
            self.len()
        );
        CharString::from_symbols(self.symbols[..len].to_vec())
    }

    /// Returns the suffix covering slots `from..=n` (1-based, inclusive).
    ///
    /// `suffix(1)` is the whole string, `suffix(n + 1)` is `ε`.
    ///
    /// # Panics
    ///
    /// Panics if `from == 0` or `from > n + 1`.
    pub fn suffix(&self, from: usize) -> CharString {
        assert!(
            from >= 1 && from <= self.len() + 1,
            "suffix start {from} out of range"
        );
        CharString::from_symbols(self.symbols[from - 1..].to_vec())
    }

    /// Returns `true` if `self` is a (non-strict) prefix of `other`
    /// (the paper's `x ⪯ w`).
    pub fn is_prefix_of(&self, other: &CharString) -> bool {
        other.symbols.len() >= self.symbols.len()
            && other.symbols[..self.symbols.len()] == self.symbols[..]
    }

    /// Concatenates two strings.
    pub fn concat(&self, other: &CharString) -> CharString {
        let mut symbols = self.symbols.clone();
        symbols.extend_from_slice(&other.symbols);
        CharString::from_symbols(symbols)
    }

    /// Number of `h` slots in the whole string.
    pub fn count_unique_honest(&self) -> usize {
        self.symbols
            .iter()
            .filter(|s| **s == Symbol::UniqueHonest)
            .count()
    }

    /// Number of `H` slots in the whole string.
    pub fn count_multi_honest(&self) -> usize {
        self.symbols
            .iter()
            .filter(|s| **s == Symbol::MultiHonest)
            .count()
    }

    /// Number of honest (`h` or `H`) slots in the whole string.
    pub fn count_honest(&self) -> usize {
        self.symbols.iter().filter(|s| s.is_honest()).count()
    }

    /// Number of adversarial (`A`) slots in the whole string.
    pub fn count_adversarial(&self) -> usize {
        self.symbols.iter().filter(|s| s.is_adversarial()).count()
    }

    /// Returns `true` if the string is *bivalent* (paper Definition 8):
    /// it contains no `h` symbol, i.e. `w ∈ {H, A}^n`.
    pub fn is_bivalent(&self) -> bool {
        self.symbols.iter().all(|s| *s != Symbol::UniqueHonest)
    }

    /// Returns `true` if the whole string is `hH`-heavy: strictly more
    /// honest than adversarial symbols (paper Section 3.1).
    pub fn is_hh_heavy(&self) -> bool {
        self.count_honest() > self.count_adversarial()
    }

    /// Returns `true` if the whole string is `A`-heavy: at least as many
    /// adversarial as honest symbols (the complement of
    /// [`is_hh_heavy`](Self::is_hh_heavy)).
    pub fn is_a_heavy(&self) -> bool {
        !self.is_hh_heavy()
    }

    /// Precomputes cumulative symbol counts enabling O(1) interval queries.
    pub fn prefix_counts(&self) -> PrefixCounts {
        PrefixCounts::new(self)
    }

    /// Slots (1-based) of all honest symbols, in increasing order.
    pub fn honest_slots(&self) -> Vec<usize> {
        self.iter_slots()
            .filter(|(_, s)| s.is_honest())
            .map(|(t, _)| t)
            .collect()
    }

    /// Slots (1-based) of all `h` symbols, in increasing order.
    pub fn unique_honest_slots(&self) -> Vec<usize> {
        self.iter_slots()
            .filter(|(_, s)| *s == Symbol::UniqueHonest)
            .map(|(t, _)| t)
            .collect()
    }
}

impl Index<usize> for CharString {
    type Output = Symbol;

    /// Indexes by 1-based slot number, like [`CharString::get`].
    fn index(&self, slot: usize) -> &Symbol {
        assert!(
            slot >= 1 && slot <= self.symbols.len(),
            "slot {slot} out of range"
        );
        &self.symbols[slot - 1]
    }
}

impl FromStr for CharString {
    type Err = ParseCharStringError;

    fn from_str(s: &str) -> Result<CharString, ParseCharStringError> {
        let mut symbols = Vec::with_capacity(s.len());
        for (position, character) in s.chars().enumerate() {
            match Symbol::from_char(character) {
                Some(sym) => symbols.push(sym),
                None => {
                    return Err(ParseCharStringError {
                        position,
                        character,
                    })
                }
            }
        }
        Ok(CharString::from_symbols(symbols))
    }
}

impl fmt::Display for CharString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.symbols {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromIterator<Symbol> for CharString {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> CharString {
        CharString::from_symbols(iter.into_iter().collect())
    }
}

impl Extend<Symbol> for CharString {
    fn extend<I: IntoIterator<Item = Symbol>>(&mut self, iter: I) {
        self.symbols.extend(iter);
    }
}

/// A semi-synchronous characteristic string `w ∈ {⊥, h, H, A}^n`
/// (paper Definition 20).
///
/// # Examples
///
/// ```
/// use multihonest_chars::{SemiString, SemiSymbol};
///
/// let w: SemiString = "h..A.H".parse()?;
/// assert_eq!(w.len(), 6);
/// assert_eq!(w.get(2), SemiSymbol::Empty);
/// assert_eq!(w.count_nonempty(), 3);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SemiString {
    symbols: Vec<SemiSymbol>,
}

impl SemiString {
    /// Creates the empty string.
    pub fn new() -> SemiString {
        SemiString::default()
    }

    /// Creates a string from a vector of symbols (slot 1 first).
    pub fn from_symbols(symbols: Vec<SemiSymbol>) -> SemiString {
        SemiString { symbols }
    }

    /// The number of slots `n`.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if this is the empty string.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol of slot `slot` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is `0` or exceeds [`len`](Self::len).
    #[inline]
    pub fn get(&self, slot: usize) -> SemiSymbol {
        assert!(
            slot >= 1 && slot <= self.symbols.len(),
            "slot {slot} out of range 1..={}",
            self.symbols.len()
        );
        self.symbols[slot - 1]
    }

    /// Appends a symbol.
    pub fn push(&mut self, s: SemiSymbol) {
        self.symbols.push(s);
    }

    /// The underlying symbols, slot 1 first.
    pub fn symbols(&self) -> &[SemiSymbol] {
        &self.symbols
    }

    /// Iterates over `(slot, symbol)` pairs, slots 1-based and increasing.
    pub fn iter_slots(&self) -> impl Iterator<Item = (usize, SemiSymbol)> + '_ {
        self.symbols
            .iter()
            .copied()
            .enumerate()
            .map(|(i, s)| (i + 1, s))
    }

    /// Number of non-`⊥` slots.
    pub fn count_nonempty(&self) -> usize {
        self.symbols.iter().filter(|s| !s.is_empty_slot()).count()
    }

    /// Returns the prefix covering slots `1..=len`.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn prefix(&self, len: usize) -> SemiString {
        assert!(
            len <= self.len(),
            "prefix length {len} exceeds {}",
            self.len()
        );
        SemiString::from_symbols(self.symbols[..len].to_vec())
    }

    /// Converts to a synchronous [`CharString`] by dropping `⊥` slots.
    ///
    /// This is **not** the reduction map `ρ_Δ` (which also re-labels honest
    /// slots followed closely by other honest slots); see
    /// [`Reduction`](crate::reduction::Reduction) for the faithful map. It
    /// equals `ρ_0`, the reduction with `Δ = 0`.
    pub fn drop_empty(&self) -> CharString {
        self.symbols.iter().filter_map(|s| s.to_symbol()).collect()
    }
}

impl FromStr for SemiString {
    type Err = ParseCharStringError;

    fn from_str(s: &str) -> Result<SemiString, ParseCharStringError> {
        let mut symbols = Vec::with_capacity(s.len());
        for (position, character) in s.chars().enumerate() {
            match SemiSymbol::from_char(character) {
                Some(sym) => symbols.push(sym),
                None => {
                    return Err(ParseCharStringError {
                        position,
                        character,
                    })
                }
            }
        }
        Ok(SemiString::from_symbols(symbols))
    }
}

impl fmt::Display for SemiString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.symbols {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromIterator<SemiSymbol> for SemiString {
    fn from_iter<I: IntoIterator<Item = SemiSymbol>>(iter: I) -> SemiString {
        SemiString::from_symbols(iter.into_iter().collect())
    }
}

impl From<CharString> for SemiString {
    fn from(w: CharString) -> SemiString {
        w.symbols().iter().map(|s| SemiSymbol::from(*s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        let w: CharString = "hAhAhHAAH".parse().unwrap();
        assert_eq!(w.to_string(), "hAhAhHAAH");
        assert_eq!(w.len(), 9);
    }

    #[test]
    fn parse_rejects_bad_symbol() {
        let err = "hAx".parse::<CharString>().unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.character, 'x');
        assert!(err.to_string().contains("position 2"));
    }

    #[test]
    fn one_based_indexing() {
        let w: CharString = "hAH".parse().unwrap();
        assert_eq!(w.get(1), Symbol::UniqueHonest);
        assert_eq!(w[2], Symbol::Adversarial);
        assert_eq!(w.get(3), Symbol::MultiHonest);
        assert_eq!(w.try_get(0), None);
        assert_eq!(w.try_get(4), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_slot_zero_panics() {
        let w: CharString = "h".parse().unwrap();
        let _ = w.get(0);
    }

    #[test]
    fn counts() {
        let w: CharString = "hAhAhHAAH".parse().unwrap();
        assert_eq!(w.count_unique_honest(), 3);
        assert_eq!(w.count_multi_honest(), 2);
        assert_eq!(w.count_honest(), 5);
        assert_eq!(w.count_adversarial(), 4);
        assert!(w.is_hh_heavy());
        assert!(!w.is_a_heavy());
    }

    #[test]
    fn prefix_suffix_concat() {
        let w: CharString = "hAhAh".parse().unwrap();
        assert_eq!(w.prefix(2).to_string(), "hA");
        assert_eq!(w.suffix(3).to_string(), "hAh");
        assert_eq!(w.suffix(6).to_string(), "");
        assert!(w.prefix(2).is_prefix_of(&w));
        assert!(!w.suffix(2).is_prefix_of(&w));
        assert_eq!(w.prefix(2).concat(&w.suffix(3)), w);
    }

    #[test]
    fn bivalent_detection() {
        assert!("HAHA".parse::<CharString>().unwrap().is_bivalent());
        assert!(!"HAh".parse::<CharString>().unwrap().is_bivalent());
        assert!(CharString::new().is_bivalent());
    }

    #[test]
    fn honest_slot_lists() {
        let w: CharString = "hAhAhHAAH".parse().unwrap();
        assert_eq!(w.honest_slots(), vec![1, 3, 5, 6, 9]);
        assert_eq!(w.unique_honest_slots(), vec![1, 3, 5]);
    }

    #[test]
    fn semi_string_roundtrip_and_drop() {
        let w: SemiString = "h..A.H".parse().unwrap();
        assert_eq!(w.to_string(), "h..A.H");
        assert_eq!(w.count_nonempty(), 3);
        assert_eq!(w.drop_empty().to_string(), "hAH");
        assert_eq!(w.prefix(3).to_string(), "h..");
    }

    #[test]
    fn semi_from_char_string() {
        let w: CharString = "hA".parse().unwrap();
        let s = SemiString::from(w);
        assert_eq!(s.to_string(), "hA");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut w: CharString = [Symbol::UniqueHonest, Symbol::Adversarial]
            .into_iter()
            .collect();
        w.extend([Symbol::MultiHonest]);
        assert_eq!(w.to_string(), "hAH");
    }

    #[test]
    fn empty_string_properties() {
        let e = CharString::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_a_heavy()); // 0 honest > 0 adversarial is false
        assert_eq!(e.to_string(), "");
    }
}
