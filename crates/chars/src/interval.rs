//! O(1) interval statistics over characteristic strings.
//!
//! The paper's structural arguments constantly ask whether a closed slot
//! interval `I = [i, j]` is *`hH`-heavy* (`#h(I) + #H(I) > #A(I)`) or
//! *`A`-heavy* (otherwise); see Section 3.1. [`PrefixCounts`] answers these
//! queries in constant time after a linear-time precomputation.

use crate::string::CharString;
use crate::symbol::Symbol;

/// Cumulative symbol counts for a fixed characteristic string.
///
/// Intervals are closed and 1-based: `[i, j]` covers slots `i..=j`.
/// The empty interval (any `i > j`) has all counts zero and is `A`-heavy
/// (it is not `hH`-heavy, since `0 > 0` fails).
///
/// # Examples
///
/// ```
/// use multihonest_chars::CharString;
///
/// let w: CharString = "hAhAhHAAH".parse()?;
/// let c = w.prefix_counts();
/// assert_eq!(c.unique_honest(1, 5), 3);
/// assert_eq!(c.adversarial(4, 8), 3);
/// assert!(c.is_hh_heavy(1, 6));
/// assert!(c.is_a_heavy(4, 8));
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixCounts {
    // cum_*[t] = number of symbols of that class among slots 1..=t.
    cum_h: Vec<u32>,
    cum_hh: Vec<u32>,
    cum_a: Vec<u32>,
}

impl PrefixCounts {
    /// Builds the cumulative tables for `w` in `O(|w|)`.
    pub fn new(w: &CharString) -> PrefixCounts {
        let n = w.len();
        let mut cum_h = Vec::with_capacity(n + 1);
        let mut cum_hh = Vec::with_capacity(n + 1);
        let mut cum_a = Vec::with_capacity(n + 1);
        cum_h.push(0);
        cum_hh.push(0);
        cum_a.push(0);
        let (mut h, mut hh, mut a) = (0u32, 0u32, 0u32);
        for &s in w.symbols() {
            match s {
                Symbol::UniqueHonest => h += 1,
                Symbol::MultiHonest => hh += 1,
                Symbol::Adversarial => a += 1,
            }
            cum_h.push(h);
            cum_hh.push(hh);
            cum_a.push(a);
        }
        PrefixCounts {
            cum_h,
            cum_hh,
            cum_a,
        }
    }

    /// The string length these counts were built for.
    pub fn len(&self) -> usize {
        self.cum_h.len() - 1
    }

    /// Returns `true` when the underlying string is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn clamp(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        if i == 0 || i > j || j > self.len() {
            None
        } else {
            Some((i, j))
        }
    }

    /// `#h([i, j])` — number of uniquely honest slots in `i..=j`.
    ///
    /// Returns 0 for empty or out-of-range intervals (`i > j` is the empty
    /// interval; `i == 0` or `j > n` is out of range).
    #[inline]
    pub fn unique_honest(&self, i: usize, j: usize) -> usize {
        match self.clamp(i, j) {
            Some((i, j)) => (self.cum_h[j] - self.cum_h[i - 1]) as usize,
            None => 0,
        }
    }

    /// `#H([i, j])` — number of multiply honest slots in `i..=j`.
    #[inline]
    pub fn multi_honest(&self, i: usize, j: usize) -> usize {
        match self.clamp(i, j) {
            Some((i, j)) => (self.cum_hh[j] - self.cum_hh[i - 1]) as usize,
            None => 0,
        }
    }

    /// `#h([i, j]) + #H([i, j])` — number of honest slots in `i..=j`.
    #[inline]
    pub fn honest(&self, i: usize, j: usize) -> usize {
        self.unique_honest(i, j) + self.multi_honest(i, j)
    }

    /// `#A([i, j])` — number of adversarial slots in `i..=j`.
    #[inline]
    pub fn adversarial(&self, i: usize, j: usize) -> usize {
        match self.clamp(i, j) {
            Some((i, j)) => (self.cum_a[j] - self.cum_a[i - 1]) as usize,
            None => 0,
        }
    }

    /// Returns `true` when `[i, j]` is `hH`-heavy:
    /// `#h(I) + #H(I) > #A(I)` (paper Section 3.1).
    #[inline]
    pub fn is_hh_heavy(&self, i: usize, j: usize) -> bool {
        self.honest(i, j) > self.adversarial(i, j)
    }

    /// Returns `true` when `[i, j]` is `A`-heavy:
    /// `#A(I) ≥ #h(I) + #H(I)` — the negation of
    /// [`is_hh_heavy`](Self::is_hh_heavy).
    #[inline]
    pub fn is_a_heavy(&self, i: usize, j: usize) -> bool {
        !self.is_hh_heavy(i, j)
    }

    /// The *walk discrepancy* `#A(I) − #honest(I)` of the interval, i.e. the
    /// net displacement of the ±1 walk across it.
    #[inline]
    pub fn discrepancy(&self, i: usize, j: usize) -> i64 {
        self.adversarial(i, j) as i64 - self.honest(i, j) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn counts_match_naive() {
        let s = w("hAhAhHAAHhHA");
        let c = s.prefix_counts();
        for i in 1..=s.len() {
            for j in i..=s.len() {
                let mut h = 0;
                let mut hh = 0;
                let mut a = 0;
                for t in i..=j {
                    match s.get(t) {
                        Symbol::UniqueHonest => h += 1,
                        Symbol::MultiHonest => hh += 1,
                        Symbol::Adversarial => a += 1,
                    }
                }
                assert_eq!(c.unique_honest(i, j), h, "h on [{i},{j}]");
                assert_eq!(c.multi_honest(i, j), hh, "H on [{i},{j}]");
                assert_eq!(c.adversarial(i, j), a, "A on [{i},{j}]");
                assert_eq!(c.honest(i, j), h + hh);
                assert_eq!(c.is_hh_heavy(i, j), h + hh > a);
                assert_eq!(c.discrepancy(i, j), a as i64 - (h + hh) as i64);
            }
        }
    }

    #[test]
    fn empty_and_out_of_range_intervals() {
        let c = w("hA").prefix_counts();
        assert_eq!(c.honest(2, 1), 0);
        assert_eq!(c.adversarial(0, 1), 0);
        assert_eq!(c.honest(1, 3), 0);
        assert!(c.is_a_heavy(2, 1)); // empty interval is A-heavy by convention
    }

    #[test]
    fn heaviness_examples_from_paper() {
        // In w = hAhAhHAAH the interval [7, 8] = AA is A-heavy and the
        // interval [5, 6] = hH is hH-heavy.
        let c = w("hAhAhHAAH").prefix_counts();
        assert!(c.is_a_heavy(7, 8));
        assert!(c.is_hh_heavy(5, 6));
        // The full string has 5 honest vs 4 adversarial slots.
        assert!(c.is_hh_heavy(1, 9));
    }

    #[test]
    fn len_reporting() {
        let c = w("hAh").prefix_counts();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(CharString::new().prefix_counts().is_empty());
    }
}
