//! Property coverage for the Δ-reduction map `ρ_Δ` (Definition 22) and the
//! characteristic-string distributions (Definitions 7/21): slot-bijection
//! round-trips, monotonicity laws, and distributional sanity over
//! deterministically sampled inputs.

use multihonest_chars::order;
use multihonest_chars::reduction::SurvivalRule;
use multihonest_chars::{
    BernoulliCondition, CharString, Reduction, SemiString, SemiSymbol, SemiSyncCondition, Symbol,
};
use proptest::prelude::*;

fn arb_semi_symbol() -> impl Strategy<Value = SemiSymbol> {
    prop_oneof![
        Just(SemiSymbol::Empty),
        Just(SemiSymbol::UniqueHonest),
        Just(SemiSymbol::MultiHonest),
        Just(SemiSymbol::Adversarial),
    ]
}

fn arb_semi_string(max_len: usize) -> impl Strategy<Value = SemiString> {
    prop::collection::vec(arb_semi_symbol(), 0..=max_len).prop_map(SemiString::from_symbols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The slot bijection π round-trips: every non-empty original slot has
    /// a reduced slot mapping back to it, empty slots have none, and π is
    /// strictly increasing.
    #[test]
    fn reduction_bijection_round_trips(w in arb_semi_string(48), delta in 0usize..5) {
        let r = Reduction::new(delta).apply(&w);
        prop_assert_eq!(r.len(), w.count_nonempty());
        let mut last = 0usize;
        for (t, sym) in w.iter_slots() {
            match r.reduced_slot(t) {
                Some(j) => {
                    prop_assert!(sym != SemiSymbol::Empty, "empty slot {t} survived");
                    prop_assert_eq!(r.original_slot(j), t);
                    prop_assert!(j > last, "π not strictly increasing at slot {t}");
                    last = j;
                }
                None => prop_assert_eq!(sym, SemiSymbol::Empty),
            }
        }
    }

    /// Δ = 0 performs no demotion at all: `ρ_0` is exactly `drop_empty`.
    #[test]
    fn delta_zero_is_drop_empty(w in arb_semi_string(48)) {
        let r = Reduction::new(0).apply(&w);
        prop_assert_eq!(r.reduced(), &w.drop_empty());
        prop_assert_eq!(r.stable_prefix(), w.drop_empty());
    }

    /// Monotonicity in Δ: a larger delay bound demotes pointwise more
    /// (`ρ_Δ(w) ⪯ ρ_{Δ+1}(w)` in the adversarial dominance order), and the
    /// length never changes.
    #[test]
    fn reduction_monotone_in_delta(w in arb_semi_string(40), delta in 0usize..5) {
        let smaller = Reduction::new(delta).apply(&w);
        let larger = Reduction::new(delta + 1).apply(&w);
        prop_assert_eq!(smaller.len(), larger.len());
        prop_assert!(order::le(smaller.reduced(), larger.reduced()));
    }

    /// Rule comparison: the segment rule (EmptyRun) demotes at least as
    /// much as the literal Definition-22 rule (NoHonestWithin).
    #[test]
    fn segment_rule_dominates_literal_rule(w in arb_semi_string(40), delta in 0usize..5) {
        let literal = Reduction::with_rule(delta, SurvivalRule::NoHonestWithin).apply(&w);
        let segment = Reduction::with_rule(delta, SurvivalRule::EmptyRun).apply(&w);
        prop_assert!(order::le(literal.reduced(), segment.reduced()));
    }

    /// Reduction never invents honest slots: adversarial count only grows,
    /// honest counts only shrink, and surviving honest slots keep their
    /// uniqueness class.
    #[test]
    fn reduction_only_demotes(w in arb_semi_string(40), delta in 0usize..5) {
        let r = Reduction::new(delta).apply(&w);
        let reduced = r.reduced();
        let mut nonempty_adversarial = 0usize;
        for (t, sym) in w.iter_slots() {
            if let Some(j) = r.reduced_slot(t) {
                let out = reduced.get(j);
                match sym {
                    SemiSymbol::Adversarial => {
                        nonempty_adversarial += 1;
                        prop_assert_eq!(out, Symbol::Adversarial);
                    }
                    SemiSymbol::UniqueHonest => {
                        prop_assert!(out == Symbol::UniqueHonest || out == Symbol::Adversarial);
                    }
                    SemiSymbol::MultiHonest => {
                        prop_assert!(out == Symbol::MultiHonest || out == Symbol::Adversarial);
                    }
                    SemiSymbol::Empty => unreachable!("empty slots have no reduced slot"),
                }
            }
        }
        prop_assert!(reduced.count_adversarial() >= nonempty_adversarial);
    }

    /// The undistorted prefix drops exactly `min(Δ, m)` trailing symbols
    /// and is a prefix of the reduced string.
    #[test]
    fn stable_prefix_shape(w in arb_semi_string(40), delta in 0usize..5) {
        let r = Reduction::new(delta).apply(&w);
        let stable = r.stable_prefix();
        prop_assert_eq!(stable.len(), r.len().saturating_sub(delta));
        prop_assert!(stable.is_prefix_of(r.reduced()));
    }

    /// Bernoulli condition: parameters round-trip through the probability
    /// constructor and the three probabilities are a distribution with
    /// `p_A = (1 − ε)/2`.
    #[test]
    fn bernoulli_parameters_round_trip(eps_pct in 1u32..100, ph_pct in 0u32..=100) {
        let epsilon = f64::from(eps_pct) / 100.0;
        let p_h = f64::from(ph_pct) / 100.0 * (1.0 + epsilon) / 2.0;
        let cond = BernoulliCondition::new(epsilon, p_h).expect("parameters in range");
        prop_assert!((cond.p_adversarial() - (1.0 - epsilon) / 2.0).abs() < 1e-12);
        let total = cond.p_unique_honest() + cond.p_multi_honest() + cond.p_adversarial();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let back = BernoulliCondition::from_probabilities(
            cond.p_unique_honest(),
            cond.p_multi_honest(),
            cond.p_adversarial(),
        )
        .expect("probabilities valid");
        prop_assert!((back.epsilon() - epsilon).abs() < 1e-9);
    }

    /// Sampling a Bernoulli condition yields the requested length with
    /// empirical symbol frequencies near the specified law (the harness is
    /// deterministic, so the tolerance is exact for these seeds).
    #[test]
    fn bernoulli_samples_match_law(seed in any::<u64>()) {
        use rand::SeedableRng;
        let cond = BernoulliCondition::new(0.2, 0.4).expect("valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 2_000;
        let w: CharString = cond.sample(&mut rng, n);
        prop_assert_eq!(w.len(), n);
        let freq_a = w.count_adversarial() as f64 / n as f64;
        let freq_h = w.count_unique_honest() as f64 / n as f64;
        prop_assert!((freq_a - cond.p_adversarial()).abs() < 0.05, "freq_a {freq_a}");
        prop_assert!((freq_h - cond.p_unique_honest()).abs() < 0.05, "freq_h {freq_h}");
    }

    /// Semi-synchronous condition: samples have the requested length, the
    /// empirical empty-slot rate tracks `1 − f`, and the Δ-reduced
    /// condition of Proposition 4 is itself a valid distribution with a
    /// smaller honest-majority margin.
    #[test]
    fn semisync_samples_and_reduction_law(seed in any::<u64>(), delta in 1usize..4) {
        use rand::SeedableRng;
        // A sparse condition (f = 0.1) keeps the Δ-reduced law honest-majority
        // for every Δ < 4 (condition (20) of Theorem 7).
        let cond = SemiSyncCondition::new(0.1, 0.005, 0.09).expect("valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 2_000;
        let w: SemiString = cond.sample(&mut rng, n);
        prop_assert_eq!(w.len(), n);
        let freq_empty = 1.0 - w.count_nonempty() as f64 / n as f64;
        prop_assert!((freq_empty - cond.p_empty()).abs() < 0.05, "freq_empty {freq_empty}");

        let reduced = cond.reduced_condition(delta).expect("reducible");
        let total = reduced.p_unique_honest() + reduced.p_multi_honest() + reduced.p_adversarial();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(reduced.epsilon() <= cond.reduced_condition(0).expect("valid").epsilon() + 1e-12);
    }
}
