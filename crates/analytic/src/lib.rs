//! # multihonest-analytic
//!
//! The stochastic machinery of Sections 4, 5 and 8 of *Consistency of
//! Proof-of-Stake Blockchains with Concurrent Honest Slot Leaders*
//! (Kiayias, Quader, Russell; ICDCS 2020): generating functions for biased
//! walks, the tail bounds on the rarity of Catalan slots (Bounds 1 and 2),
//! the ballot-style bound for the Δ-synchronous reduction (Bound 3), and
//! numeric evaluators for the headline consistency theorems
//! (Theorems 1, 2, 7 and 8).
//!
//! The crate works with two complementary representations:
//!
//! * **truncated power series** ([`series::Series`]) — exact non-negative
//!   coefficients of the descent/ascent generating functions `D(Z)`,
//!   `A(Z)` and their composites `F(Z)`, `Ĉ(Z)`, `M̂(Z)` (Section 5),
//!   giving near-exact tail probabilities for moderate horizons;
//! * **closed-form real evaluation** ([`walks`]) — `D(z)`, `A(z)` as
//!   algebraic functions of a real `z` inside the radius of convergence,
//!   powering rigorous Chernoff-style tail bounds
//!   `Pr[T ≥ k] ≤ G(z) / z^k` and the radius computations `R₁`, `R₂` that
//!   yield the `e^{−Θ(k)}` rates.
//!
//! ## Example
//!
//! ```
//! use multihonest_analytic::bounds::Bound1;
//!
//! // ε = 0.4 honest margin, uniquely honest slots with probability 0.3.
//! let b = Bound1::new(0.4, 0.3)?;
//! let p100 = b.tail(100);
//! let p400 = b.tail(400);
//! assert!(p400 < p100);          // exponential decay in k
//! assert!(b.rate() > 0.0);       // strictly positive exponent
//! # Ok::<(), multihonest_analytic::ParameterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bounds;
pub mod series;
pub mod theorems;
pub mod walks;

pub use crate::bounds::{Bound1, Bound2, Bound3};
pub use crate::theorems::{
    cp_insecurity_bound, settlement_insecurity_bound, settlement_insecurity_bound_tiebreak,
    theorem7_bound,
};

use std::fmt;

/// Error for out-of-range analytic parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterError {
    message: String,
}

impl ParameterError {
    pub(crate) fn new(message: impl Into<String>) -> ParameterError {
        ParameterError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid analytic parameter: {}", self.message)
    }
}

impl std::error::Error for ParameterError {}
