//! Numeric evaluators for the paper's headline theorems.
//!
//! Each function returns a **rigorous upper bound** on the corresponding
//! insecurity probability, computed through the Catalan-slot tail bounds
//! of [`crate::bounds`]:
//!
//! * Theorem 1 → [`settlement_insecurity_bound`];
//! * Theorem 2 → [`settlement_insecurity_bound_tiebreak`];
//! * Theorem 7 → [`theorem7_bound`];
//! * Theorem 8 → [`cp_insecurity_bound`] /
//!   [`cp_insecurity_bound_tiebreak`].

use multihonest_chars::SemiSyncCondition;

use crate::bounds::{Bound1, Bound2, Bound3};
use crate::ParameterError;

/// Theorem 1: an upper bound on the `(s, k)`-settlement insecurity
/// `S^{s,k}[B]` under the `(ε, p_h)`-Bernoulli condition.
///
/// The proof pipeline: a settlement violation requires the window
/// `[s, s + k − 1]` to contain **no uniquely honest Catalan slot**
/// (Theorem 3 + Equation (1)), whose probability Bound 1 caps at
/// `e^{−k·Ω(min(ε³, ε²p_h))}`. By stochastic dominance the same bound
/// holds for any distribution dominated by the Bernoulli condition.
///
/// # Errors
///
/// Returns an error when `ε ∉ (0, 1)` or `p_h ∉ (0, (1 + ε)/2]` — in
/// particular Theorem 1 genuinely requires `p_h > 0`; use the
/// tie-breaking variant otherwise.
pub fn settlement_insecurity_bound(
    epsilon: f64,
    p_h: f64,
    k: usize,
) -> Result<f64, ParameterError> {
    Ok(Bound1::new(epsilon, p_h)?.tail(k))
}

/// Theorem 2: the settlement insecurity bound in the consistent
/// tie-breaking model (axiom A0′), valid even for bivalent strings
/// (`p_h = 0`): `e^{−k·Ω(ε³)}` via consecutive Catalan slots (Bound 2).
///
/// # Errors
///
/// Returns an error when `ε ∉ (0, 1)`.
pub fn settlement_insecurity_bound_tiebreak(epsilon: f64, k: usize) -> Result<f64, ParameterError> {
    Ok(Bound2::new(epsilon)?.tail(k))
}

/// Theorem 8 (first claim): an upper bound on
/// `Pr[w violates k-CP^slot]` (hence also `k`-CP) for a length-`T`
/// string under the `(ε, p_h)`-Bernoulli condition:
/// `T · Σ_{r ≥ k} tail₁(r)`.
///
/// # Errors
///
/// Returns an error when the Bound 1 parameters are out of range.
pub fn cp_insecurity_bound(
    epsilon: f64,
    p_h: f64,
    total_len: usize,
    k: usize,
) -> Result<f64, ParameterError> {
    let b = Bound1::new(epsilon, p_h)?;
    Ok((total_len as f64 * b.tail_sum(k)).min(1.0))
}

/// Theorem 8 (second claim): the common-prefix bound under consistent
/// tie-breaking, `T · Σ_{r ≥ k} tail₂(r)`, valid for bivalent strings.
///
/// # Errors
///
/// Returns an error when `ε ∉ (0, 1)`.
pub fn cp_insecurity_bound_tiebreak(
    epsilon: f64,
    total_len: usize,
    k: usize,
) -> Result<f64, ParameterError> {
    let b = Bound2::new(epsilon)?;
    Ok((total_len as f64 * b.tail_sum(k)).min(1.0))
}

/// Theorem 7: the `(k, Δ)`-settlement insecurity bound in the
/// Δ-synchronous setting.
///
/// The Δ-synchronous execution is reduced through `ρ_Δ` to a synchronous
/// one whose symbols follow [`SemiSyncCondition::reduced_condition`]; the
/// failure probability splits (Equation (24)) into
///
/// * `Pr[no uniquely honest Catalan slot in the k-window]` — Bound 1 at
///   the reduced parameters `(ε_Δ, q_h)`; plus
/// * `Pr[the walk returns within Δ after the Catalan slot]` — Bound 3.
///
/// # Errors
///
/// Returns an error when condition (20) fails for this `Δ` (the reduced
/// adversarial rate reaches 1/2) or the reduced `q_h` vanishes.
pub fn theorem7_bound(
    cond: &SemiSyncCondition,
    delta: usize,
    k: usize,
) -> Result<f64, ParameterError> {
    let reduced = cond
        .reduced_condition(delta)
        .map_err(|e| ParameterError::new(e.to_string()))?;
    let eps = reduced.epsilon();
    let q_h = reduced.p_unique_honest();
    let b1 = Bound1::new(eps, q_h)?;
    let b3 = Bound3::new(eps, delta)?;
    Ok((b1.tail(k) + b3.tail(k)).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_bound_decays() {
        let b100 = settlement_insecurity_bound(0.2, 0.3, 100).unwrap();
        let b300 = settlement_insecurity_bound(0.2, 0.3, 300).unwrap();
        assert!(b300 < b100);
        assert!(b100 <= 1.0 && b300 > 0.0);
    }

    #[test]
    fn theorem1_requires_positive_ph() {
        assert!(settlement_insecurity_bound(0.2, 0.0, 100).is_err());
        // …but Theorem 2 does not.
        assert!(settlement_insecurity_bound_tiebreak(0.2, 100).is_ok());
    }

    #[test]
    fn theorem1_dominates_exact_dp() {
        // The analytic bound must upper-bound the exact DP probability.
        use multihonest_chars::BernoulliCondition;
        use multihonest_margin::ExactSettlement;
        for (eps, ph, k) in [(0.3, 0.3, 60), (0.2, 0.5, 100), (0.4, 0.2, 40)] {
            let bound = settlement_insecurity_bound(eps, ph, k).unwrap();
            let cond = BernoulliCondition::new(eps, ph).unwrap();
            let exact = ExactSettlement::new(cond).violation_probability(k);
            assert!(
                bound >= exact,
                "eps={eps} ph={ph} k={k}: bound {bound:e} < exact {exact:e}"
            );
        }
    }

    #[test]
    fn theorem2_beats_theorem1_when_ph_vanishes() {
        // In the p_h → 0 regime Theorem 1's bound collapses while
        // Theorem 2's stays exponential.
        let k = 400;
        let t1 = settlement_insecurity_bound(0.4, 1e-6, k).unwrap();
        let t2 = settlement_insecurity_bound_tiebreak(0.4, k).unwrap();
        assert!(t2 < t1, "t2 = {t2:e} should beat t1 = {t1:e}");
        assert!(t2 < 1e-2, "t2 = {t2:e}");
        assert!(
            t1 > 0.5,
            "Theorem 1 is vacuous without uniquely honest slots"
        );
    }

    #[test]
    fn cp_bound_scales_with_horizon() {
        let a = cp_insecurity_bound(0.5, 0.6, 10_000, 600).unwrap();
        let b = cp_insecurity_bound(0.5, 0.6, 100_000, 600).unwrap();
        assert!(a < b || (a == 1.0 && b == 1.0));
        assert!(a < 1e-2, "a = {a:e}");
        let c = cp_insecurity_bound(0.5, 0.6, 10_000, 1200).unwrap();
        assert!(c < a);
        let d = cp_insecurity_bound_tiebreak(0.5, 10_000, 1200).unwrap();
        assert!(d <= 1.0 && d > 0.0);
    }

    #[test]
    fn theorem7_reduction_pipeline() {
        // A sparse chain (f = 0.05) tolerates sizeable Δ.
        let cond = SemiSyncCondition::new(0.05, 0.01, 0.03).unwrap();
        let b_small = theorem7_bound(&cond, 2, 300).unwrap();
        let b_large = theorem7_bound(&cond, 8, 300).unwrap();
        assert!(b_small < b_large, "more delay, weaker guarantee");
        let b_longer = theorem7_bound(&cond, 2, 600).unwrap();
        assert!(b_longer < b_small);
        // Condition (20) must eventually fail for huge Δ.
        assert!(theorem7_bound(&cond, 200, 300).is_err());
    }
}
