//! Descent/ascent generating functions of the ε-biased ±1 walk
//! (paper Section 5), in both coefficient and closed form.
//!
//! With `p = (1 − ε)/2` (up-step) and `q = (1 + ε)/2` (down-step):
//!
//! * `D(Z)` — the descent stopping time (first passage to −1):
//!   `D(Z) = (1 − √(1 − 4pqZ²))/(2pZ)`, a probability generating function;
//! * `A(Z)` — the ascent stopping time (first passage to +1):
//!   `A(Z) = (1 − √(1 − 4pqZ²))/(2qZ)`, defective with `A(1) = p/q`
//!   (gambler's ruin).
//!
//! Coefficientwise, `Pr[descent takes 2m+1 steps] = C_m p^m q^{m+1}` with
//! `C_m` the Catalan numbers — the combinatorial namesake of the paper's
//! Catalan slots.

use crate::series::Series;
use crate::ParameterError;

/// The walk parameter pack: `p` up, `q = 1 − p` down, `q − p = ε > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bias {
    p: f64,
    q: f64,
}

impl Bias {
    /// Creates the bias from the honest margin `ε ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `ε ∉ (0, 1)`.
    pub fn from_epsilon(epsilon: f64) -> Result<Bias, ParameterError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(ParameterError::new(format!(
                "epsilon = {epsilon} not in (0, 1)"
            )));
        }
        Ok(Bias {
            p: (1.0 - epsilon) / 2.0,
            q: (1.0 + epsilon) / 2.0,
        })
    }

    /// The up-step (adversarial) probability `p = (1 − ε)/2`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The down-step (honest) probability `q = (1 + ε)/2`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// `ε = q − p`.
    pub fn epsilon(&self) -> f64 {
        self.q - self.p
    }

    /// Gambler's ruin: the probability that the walk ever rises by one,
    /// `A(1) = p/q`.
    pub fn ruin(&self) -> f64 {
        self.p / self.q
    }

    /// `β = (1 − ε)/(1 + ε) = p/q`: the geometric ratio of the stationary
    /// reflected-walk law `X_∞` (Equation (9)).
    pub fn beta(&self) -> f64 {
        self.p / self.q
    }

    /// The stationary law `X_∞(r) = (1 − β) β^r`.
    pub fn x_infinity(&self, r: usize) -> f64 {
        let beta = self.beta();
        (1.0 - beta) * beta.powi(r as i32)
    }

    /// The descent series `D(Z)` truncated to `terms` coefficients.
    pub fn descent_series(&self, terms: usize) -> Series {
        // D has coefficients C_m p^m q^{m+1} at odd degrees 2m+1, built by
        // the stable recurrence ratio: d_{m+1}/d_m = C_{m+1}/C_m · pq
        //   = (2(2m+1)/(m+2)) · p q.
        let mut s = Series::zeros(terms);
        let mut coeff = self.q; // m = 0: C_0 q = q at degree 1
        let mut m = 0usize;
        loop {
            let deg = 2 * m + 1;
            if deg >= terms {
                break;
            }
            // SAFETY of index: deg < terms checked above.
            s = s.add(&Series::monomial(terms, deg, coeff));
            coeff *= 2.0 * (2.0 * m as f64 + 1.0) / (m as f64 + 2.0) * self.p * self.q;
            m += 1;
        }
        s
    }

    /// The ascent series `A(Z)` truncated to `terms` coefficients
    /// (defective: coefficients sum to `p/q`).
    pub fn ascent_series(&self, terms: usize) -> Series {
        // A is D with p and q swapped.
        let swapped = Bias {
            p: self.q,
            q: self.p,
        };
        swapped.descent_series(terms)
    }

    /// Closed-form `D(z)` for real `z` inside the radius of convergence;
    /// `None` outside (`1 − 4pqz² < 0`).
    pub fn descent_eval(&self, z: f64) -> Option<f64> {
        if z == 0.0 {
            return Some(0.0);
        }
        let disc = 1.0 - 4.0 * self.p * self.q * z * z;
        if disc < 0.0 {
            return None;
        }
        Some((1.0 - disc.sqrt()) / (2.0 * self.p * z))
    }

    /// Closed-form `A(z)`; `None` outside the radius of convergence.
    pub fn ascent_eval(&self, z: f64) -> Option<f64> {
        if z == 0.0 {
            return Some(0.0);
        }
        let disc = 1.0 - 4.0 * self.p * self.q * z * z;
        if disc < 0.0 {
            return None;
        }
        Some((1.0 - disc.sqrt()) / (2.0 * self.q * z))
    }

    /// The shared radius of convergence of `D` and `A`:
    /// `1/√(4pq) = 1/√(1 − ε²)`.
    pub fn walk_radius(&self) -> f64 {
        1.0 / (4.0 * self.p * self.q).sqrt()
    }

    /// The radius `R₁` of the composite `A(Z·D(Z))` (paper Equation (5)):
    /// the positivity threshold of the inner discriminant.
    pub fn composite_radius(&self) -> f64 {
        let eps = self.epsilon();
        let r1sq = (2.0 / (1.0 - eps * eps).sqrt() - 1.0 / (1.0 + eps)) / (1.0 + eps);
        r1sq.sqrt()
    }
}

/// Natural-log factorials `ln(n!)` for `n ∈ 0..=max`, by cumulative
/// summation (exact to f64 rounding; used by Bound 3's binomials).
#[derive(Debug, Clone)]
pub struct LnFactorials {
    table: Vec<f64>,
}

impl LnFactorials {
    /// Builds the table up to `max`.
    pub fn up_to(max: usize) -> LnFactorials {
        let mut table = Vec::with_capacity(max + 1);
        table.push(0.0);
        let mut acc = 0.0;
        for i in 1..=max {
            acc += (i as f64).ln();
            table.push(acc);
        }
        LnFactorials { table }
    }

    /// `ln(n!)`.
    pub fn ln_factorial(&self, n: usize) -> f64 {
        self.table[n]
    }

    /// `ln C(n, k)`.
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        assert!(k <= n, "C({n}, {k}) undefined");
        self.table[n] - self.table[k] - self.table[n - k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descent_series_is_probability_gf() {
        let b = Bias::from_epsilon(0.2).unwrap();
        let d = b.descent_series(4001);
        let total = d.partial_sum(4001);
        assert!((total - 1.0).abs() < 1e-6, "D(1) = {total}");
        // Coefficients: q at Z, C_1 p q² = pq² at Z³, 2p²q³ at Z⁵.
        assert!((d.coefficient(1) - b.q()).abs() < 1e-15);
        assert!((d.coefficient(3) - b.p() * b.q() * b.q()).abs() < 1e-15);
        assert!((d.coefficient(5) - 2.0 * b.p().powi(2) * b.q().powi(3)).abs() < 1e-15);
        assert_eq!(d.coefficient(2), 0.0);
    }

    #[test]
    fn ascent_series_sums_to_ruin_probability() {
        let b = Bias::from_epsilon(0.3).unwrap();
        let a = b.ascent_series(4001);
        let total = a.partial_sum(4001);
        assert!(
            (total - b.ruin()).abs() < 1e-6,
            "A(1) = {total} vs {}",
            b.ruin()
        );
    }

    #[test]
    fn closed_form_matches_series_inside_radius() {
        let b = Bias::from_epsilon(0.25).unwrap();
        let d = b.descent_series(2000);
        let a = b.ascent_series(2000);
        for &z in &[0.3, 0.7, 0.9, 1.0] {
            let dz = b.descent_eval(z).unwrap();
            let az = b.ascent_eval(z).unwrap();
            assert!((d.eval(z) - dz).abs() < 1e-9, "D({z})");
            assert!((a.eval(z) - az).abs() < 1e-9, "A({z})");
        }
        assert!(b.descent_eval(2.0 * b.walk_radius()).is_none());
    }

    #[test]
    fn radii_ordering() {
        // R₁ < walk radius: the composite converges on a smaller disc.
        for eps in [0.05, 0.1, 0.3, 0.5, 0.8] {
            let b = Bias::from_epsilon(eps).unwrap();
            assert!(b.composite_radius() > 1.0, "R1 > 1 for eps = {eps}");
            assert!(
                b.composite_radius() < b.walk_radius(),
                "R1 < walk radius for eps = {eps}"
            );
        }
    }

    #[test]
    fn x_infinity_is_a_distribution() {
        let b = Bias::from_epsilon(0.2).unwrap();
        let total: f64 = (0..2000).map(|r| b.x_infinity(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ln_factorials() {
        let lf = LnFactorials::up_to(20);
        assert_eq!(lf.ln_factorial(0), 0.0);
        assert!((lf.ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((lf.ln_choose(10, 3) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        assert!(Bias::from_epsilon(0.0).is_err());
        assert!(Bias::from_epsilon(1.0).is_err());
        assert!(Bias::from_epsilon(-0.5).is_err());
    }
}
