//! Truncated formal power series over `f64`.
//!
//! The generating functions of paper Section 5 have non-negative
//! coefficients bounded by 1, so plain `f64` arithmetic with truncation at
//! a fixed order is numerically benign: every operation used here
//! (addition, multiplication, reciprocal of `1 − F` with `F(0) = 0`)
//! produces coefficients that are exact up to rounding, with truncation
//! only *discarding* high-order terms (never corrupting low-order ones).

/// A power series `Σ c_t Z^t` truncated to a fixed number of terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    c: Vec<f64>,
}

impl Series {
    /// The zero series with `terms` coefficients.
    pub fn zeros(terms: usize) -> Series {
        Series {
            c: vec![0.0; terms],
        }
    }

    /// A series from explicit coefficients.
    pub fn from_coefficients(c: Vec<f64>) -> Series {
        Series { c }
    }

    /// The monomial `a·Z^k`, truncated to `terms`.
    pub fn monomial(terms: usize, k: usize, a: f64) -> Series {
        let mut s = Series::zeros(terms);
        if k < terms {
            s.c[k] = a;
        }
        s
    }

    /// Number of retained terms.
    pub fn terms(&self) -> usize {
        self.c.len()
    }

    /// The coefficient of `Z^t` (0 beyond the truncation order).
    pub fn coefficient(&self, t: usize) -> f64 {
        self.c.get(t).copied().unwrap_or(0.0)
    }

    /// All coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.c
    }

    /// `self + other` (termwise; the result keeps `self`'s order).
    pub fn add(&self, other: &Series) -> Series {
        let mut c = self.c.clone();
        for (i, x) in c.iter_mut().enumerate() {
            *x += other.coefficient(i);
        }
        Series { c }
    }

    /// `a · self`.
    pub fn scale(&self, a: f64) -> Series {
        Series {
            c: self.c.iter().map(|x| x * a).collect(),
        }
    }

    /// `self · other`, truncated to `self`'s order.
    pub fn mul(&self, other: &Series) -> Series {
        let n = self.c.len();
        let mut c = vec![0.0; n];
        for (i, &a) in self.c.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.c.iter().enumerate() {
                if i + j >= n {
                    break;
                }
                c[i + j] += a * b;
            }
        }
        Series { c }
    }

    /// `self / (1 − f)` where `f(0) = 0`: the standard recursive series
    /// division, exact term by term.
    ///
    /// # Panics
    ///
    /// Panics if `f` has a non-zero constant term.
    pub fn div_one_minus(&self, f: &Series) -> Series {
        assert!(
            f.coefficient(0) == 0.0,
            "div_one_minus requires f(0) = 0, got {}",
            f.coefficient(0)
        );
        let n = self.c.len();
        let mut c = vec![0.0; n];
        for t in 0..n {
            // c_t = self_t + Σ_{j=1..t} f_j · c_{t−j}
            let mut acc = self.c[t];
            for j in 1..=t {
                let fj = f.coefficient(j);
                if fj != 0.0 {
                    acc += fj * c[t - j];
                }
            }
            c[t] = acc;
        }
        Series { c }
    }

    /// The partial sum `Σ_{t < k} c_t` with Kahan compensation.
    pub fn partial_sum(&self, k: usize) -> f64 {
        let mut acc = 0.0;
        let mut comp = 0.0;
        for &x in self.c.iter().take(k) {
            let y = x - comp;
            let t = acc + y;
            comp = (t - acc) - y;
            acc = t;
        }
        acc
    }

    /// For a (sub-)probability series, `Σ_{t ≥ k} c_t` computed as
    /// `total − partial_sum(k)`, clamped to `[0, 1]`. `total` defaults to
    /// 1 for probability generating functions.
    pub fn tail_from(&self, k: usize, total: f64) -> f64 {
        (total - self.partial_sum(k)).clamp(0.0, 1.0)
    }

    /// Evaluates the truncated series at `z ≥ 0` (Horner).
    pub fn eval(&self, z: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.c.iter().rev() {
            acc = acc * z + c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_polynomial_arithmetic() {
        // (1 + 2Z)(3 + Z + Z²) = 3 + 7Z + 3Z² + 2Z³
        let a = Series::from_coefficients(vec![1.0, 2.0, 0.0, 0.0]);
        let b = Series::from_coefficients(vec![3.0, 1.0, 1.0, 0.0]);
        let c = a.mul(&b);
        assert_eq!(c.coefficients(), &[3.0, 7.0, 3.0, 2.0]);
    }

    #[test]
    fn division_inverts_multiplication() {
        // g = a / (1−f)  ⇒  g · (1−f) = a.
        let a = Series::from_coefficients(vec![0.5, 0.25, 0.0, 0.125, 0.0, 0.0]);
        let f = Series::from_coefficients(vec![0.0, 0.5, 0.25, 0.0, 0.1, 0.0]);
        let g = a.div_one_minus(&f);
        let one_minus_f = Series::from_coefficients(vec![1.0, -0.5, -0.25, 0.0, -0.1, 0.0]);
        let back = g.mul(&one_minus_f);
        for t in 0..6 {
            assert!(
                (back.coefficient(t) - a.coefficient(t)).abs() < 1e-12,
                "t = {t}"
            );
        }
    }

    #[test]
    fn geometric_series_via_division() {
        // 1/(1−Z/2) = Σ (1/2)^t Z^t.
        let one = Series::monomial(8, 0, 1.0);
        let f = Series::monomial(8, 1, 0.5);
        let g = one.div_one_minus(&f);
        for t in 0..8 {
            assert!((g.coefficient(t) - 0.5f64.powi(t as i32)).abs() < 1e-12);
        }
        assert!((g.eval(0.5) - (1.0 / (1.0 - 0.25))).abs() < 1e-2); // truncated
    }

    #[test]
    fn partial_and_tail_sums() {
        let s = Series::from_coefficients(vec![0.5, 0.25, 0.125, 0.0625]);
        assert!((s.partial_sum(2) - 0.75).abs() < 1e-15);
        assert!((s.tail_from(2, 1.0) - 0.25).abs() < 1e-15);
        assert_eq!(s.tail_from(0, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "f(0) = 0")]
    fn division_requires_zero_constant_term() {
        let a = Series::monomial(4, 0, 1.0);
        let f = Series::monomial(4, 0, 0.5);
        let _ = a.div_one_minus(&f);
    }
}
