//! Prior-work baselines (paper Section 1).
//!
//! The paper's contribution is best seen against the thresholds demanded
//! by earlier consistency analyses of longest-chain PoS protocols:
//!
//! | analysis | threshold | error |
//! |---|---|---|
//! | **this paper** (Thm 1) | `p_h + p_H > p_A` | `e^{−Θ(k)}` |
//! | **this paper** (Thm 2, A0′) | `p_h + p_H > p_A` (even `p_h = 0`) | `e^{−Θ(k)}` |
//! | Ouroboros Praos / Genesis | `p_h − p_H > p_A` | `e^{−Θ(k)}` |
//! | Sleepy / Snow White | `p_h > p_A` | `e^{−Θ(√k)}` |
//!
//! This module classifies parameter points against each threshold and
//! provides *qualitative* error-shape curves for the comparison sweeps of
//! the experiment harness (the baselines' constants are not published, so
//! the shapes are normalised to match at `k = 1`).

use multihonest_chars::BernoulliCondition;

/// Which analyses admit a given `(p_h, p_H, p_A)` point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admissibility {
    /// This paper's optimal threshold `p_h + p_H > p_A`.
    pub optimal: bool,
    /// Praos/Genesis: `p_h − p_H > p_A`.
    pub praos_genesis: bool,
    /// Sleepy/Snow White: `p_h > p_A`.
    pub sleepy_snow_white: bool,
}

/// Classifies a Bernoulli condition against all three thresholds.
pub fn classify(cond: &BernoulliCondition) -> Admissibility {
    Admissibility {
        optimal: cond.satisfies_optimal_threshold(),
        praos_genesis: cond.satisfies_praos_threshold(),
        sleepy_snow_white: cond.satisfies_snow_white_threshold(),
    }
}

/// The *effective margin* each analysis extracts from a parameter point
/// (how far the relevant threshold is from being violated); `None` when
/// the analysis does not apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveMargins {
    /// `ε = p_h + p_H − p_A` (this paper).
    pub optimal: Option<f64>,
    /// `p_h − p_H − p_A` (Praos/Genesis).
    pub praos_genesis: Option<f64>,
    /// `p_h − p_A` (Sleepy/Snow White).
    pub sleepy_snow_white: Option<f64>,
}

/// Computes the effective margins of a condition.
pub fn effective_margins(cond: &BernoulliCondition) -> EffectiveMargins {
    let ph = cond.p_unique_honest();
    let phh = cond.p_multi_honest();
    let pa = cond.p_adversarial();
    let wrap = |m: f64| (m > 0.0).then_some(m);
    EffectiveMargins {
        optimal: wrap(ph + phh - pa),
        praos_genesis: wrap(ph - phh - pa),
        sleepy_snow_white: wrap(ph - pa),
    }
}

/// Qualitative error shape `e^{−c·m³·k}` for analyses with linear
/// consistency (this paper, Praos/Genesis), with margin `m`. The cubic
/// dependence matches the `Ω(ε³)` exponents in all of these works.
pub fn linear_consistency_shape(margin: f64, k: usize) -> f64 {
    (-(margin.powi(3) / 2.0) * k as f64).exp().min(1.0)
}

/// Qualitative error shape `e^{−c·m·√k}` for the Sleepy/Snow White
/// analyses (`e^{−Θ(√k)}` consistency).
pub fn sqrt_consistency_shape(margin: f64, k: usize) -> f64 {
    (-(margin / 2.0) * (k as f64).sqrt()).exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(ph: f64, phh: f64, pa: f64) -> BernoulliCondition {
        BernoulliCondition::from_probabilities(ph, phh, pa).unwrap()
    }

    #[test]
    fn threshold_hierarchy_strictness() {
        // Every Praos-admissible point is SnowWhite- and optimal-admissible;
        // every SnowWhite-admissible point is optimal-admissible.
        let grid = [
            cond(0.50, 0.10, 0.40),
            cond(0.30, 0.30, 0.40),
            cond(0.10, 0.50, 0.40),
            cond(0.45, 0.10, 0.45),
            cond(0.60, 0.05, 0.35),
        ];
        for c in &grid {
            let a = classify(c);
            if a.praos_genesis {
                assert!(a.sleepy_snow_white && a.optimal);
            }
            if a.sleepy_snow_white {
                assert!(a.optimal);
            }
        }
    }

    #[test]
    fn paper_exclusive_region_exists() {
        // p_h < p_A but p_h + p_H > p_A: only this paper applies.
        let c = cond(0.10, 0.50, 0.40);
        let a = classify(&c);
        assert!(a.optimal && !a.sleepy_snow_white && !a.praos_genesis);
        let m = effective_margins(&c);
        assert!(m.optimal.is_some());
        assert!(m.praos_genesis.is_none());
        assert!(m.sleepy_snow_white.is_none());
    }

    #[test]
    fn shapes_decay_appropriately() {
        let lin: Vec<f64> = [100, 400]
            .iter()
            .map(|&k| linear_consistency_shape(0.2, k))
            .collect();
        let sq: Vec<f64> = [100, 400]
            .iter()
            .map(|&k| sqrt_consistency_shape(0.2, k))
            .collect();
        assert!(lin[1] < lin[0]);
        assert!(sq[1] < sq[0]);
        // Quadrupling k squares the sqrt-shape but fourth-powers the
        // linear shape: the linear analysis pulls ahead.
        let lin_ratio = lin[1].ln() / lin[0].ln();
        let sq_ratio = sq[1].ln() / sq[0].ln();
        assert!((lin_ratio - 4.0).abs() < 1e-9);
        assert!((sq_ratio - 2.0).abs() < 1e-9);
    }
}
