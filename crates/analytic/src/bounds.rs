//! Bounds 1–3 of the paper, computable.
//!
//! * [`Bound1`] — `Pr[no uniquely honest Catalan slot in a k-window]`,
//!   via the generating function `Ĉ(Z) = (q_h ε/q)·Z / (1 − F(Z))` with
//!   `F = pZD + q_h Z·A(ZD) + q_H Z` (Section 5.1), corrected for a long
//!   prefix by the stationary factor `X_∞(D(Z))`;
//! * [`Bound2`] — `Pr[no two consecutive Catalan slots in a k-window]`,
//!   via `M̂(Z) = εD / (1 − (1 − ε)Ê)` (Section 5.2);
//! * [`Bound3`] — the ballot-walk tail for the Δ-synchronous reduction
//!   (Section 8.2).
//!
//! Each bound offers two evaluation modes:
//!
//! * [`Bound1::tail_exact`] — near-exact tails by expanding the truncated
//!   series (`O(k²)` per call, coefficients exact up to rounding);
//! * [`Bound1::tail`] — a rigorous Chernoff-style upper bound
//!   `min_z G(z)/z^k` over the convergence disc (`O(grid)` per call),
//!   valid for every `k` — this is the bound the theorems quote, with the
//!   `e^{−Θ(k)}` rate given by [`Bound1::rate`].

use crate::series::Series;
use crate::walks::{Bias, LnFactorials};
use crate::ParameterError;

/// Number of grid points used when minimising the Chernoff bound.
const CHERNOFF_GRID: usize = 400;

/// Bound 1 (Section 5.1): the rarity of uniquely honest Catalan slots.
#[derive(Debug, Clone, Copy)]
pub struct Bound1 {
    bias: Bias,
    q_h: f64,
    q_hh: f64,
}

impl Bound1 {
    /// Creates the bound for honest margin `ε ∈ (0, 1)` and uniquely
    /// honest probability `q_h ∈ (0, (1 + ε)/2]`.
    ///
    /// # Errors
    ///
    /// Returns an error when parameters leave those ranges (`q_h = 0` makes
    /// the bound vacuous: Theorem 1 requires uniquely honest slots).
    pub fn new(epsilon: f64, q_h: f64) -> Result<Bound1, ParameterError> {
        let bias = Bias::from_epsilon(epsilon)?;
        if !(q_h > 0.0 && q_h <= bias.q() + 1e-12) {
            return Err(ParameterError::new(format!(
                "q_h = {q_h} not in (0, q = {}]",
                bias.q()
            )));
        }
        Ok(Bound1 {
            bias,
            q_h: q_h.min(bias.q()),
            q_hh: bias.q() - q_h.min(bias.q()),
        })
    }

    /// The underlying walk bias.
    pub fn bias(&self) -> Bias {
        self.bias
    }

    /// The series `A(Z·D(Z))` truncated to `terms`.
    fn ascent_of_zd(&self, terms: usize) -> Series {
        ascent_of_zd(&self.bias, terms)
    }

    /// The series `F(Z) = pZD(Z) + q_h Z·A(ZD(Z)) + q_H Z`.
    pub fn f_series(&self, terms: usize) -> Series {
        let d = self.bias.descent_series(terms);
        let zd = shift(&d); // Z·D(Z)
        let azd = self.ascent_of_zd(terms);
        let zazd = shift(&azd); // Z·A(ZD)
        zd.scale(self.bias.p())
            .add(&zazd.scale(self.q_h))
            .add(&Series::monomial(terms, 1, self.q_hh))
    }

    /// The dominating series `Ĉ(Z) = (q_h ε/q) Z / (1 − F(Z))`: a
    /// probability generating function for (an upper bound on) the index
    /// of the first uniquely honest Catalan slot.
    pub fn c_hat_series(&self, terms: usize) -> Series {
        let f = self.f_series(terms);
        let numer = Series::monomial(terms, 1, self.q_h * self.bias.epsilon() / self.bias.q());
        numer.div_one_minus(&f)
    }

    /// `C̃(Z) = X_∞(D(Z)) · Ĉ(Z)`: the long-prefix variant (Section 5.1,
    /// Case 2), still a probability generating function.
    pub fn c_tilde_series(&self, terms: usize) -> Series {
        let c_hat = self.c_hat_series(terms);
        let beta = self.bias.beta();
        let beta_d = self.bias.descent_series(terms).scale(beta);
        c_hat.scale(1.0 - beta).div_one_minus(&beta_d)
    }

    /// Near-exact tail `Pr[no uniquely honest Catalan slot in a window of
    /// k slots]` (long-prefix variant) by series expansion. `O(k²)`.
    pub fn tail_exact(&self, k: usize) -> f64 {
        self.c_tilde_series(k + 1).tail_from(k, 1.0)
    }

    /// Closed-form `F(z)` for real `z`; `None` outside convergence.
    pub fn f_eval(&self, z: f64) -> Option<f64> {
        let d = self.bias.descent_eval(z)?;
        let a_of = self.bias.ascent_eval(z * d)?;
        Some(self.bias.p() * z * d + self.q_h * z * a_of + self.q_hh * z)
    }

    /// Closed-form `C̃(z)`; `None` outside convergence or where `F(z) ≥ 1`.
    pub fn c_tilde_eval(&self, z: f64) -> Option<f64> {
        let f = self.f_eval(z)?;
        if f >= 1.0 {
            return None;
        }
        let c_hat = (self.q_h * self.bias.epsilon() / self.bias.q()) * z / (1.0 - f);
        let d = self.bias.descent_eval(z)?;
        let beta = self.bias.beta();
        if beta * d >= 1.0 {
            return None;
        }
        Some((1.0 - beta) * c_hat / (1.0 - beta * d))
    }

    /// The radius of convergence `R = min(R₁, R₂)` where `R₁` bounds the
    /// convergence of `A(ZD(Z))` and `R₂` solves `F(z) = 1` (Section 5.1).
    pub fn radius(&self) -> f64 {
        let r1 = self.bias.composite_radius();
        // F is convex increasing on [1, R1); find R2 by bisection if F
        // crosses 1 before R1.
        let probe = |z: f64| self.f_eval(z);
        match probe(r1 * (1.0 - 1e-9)) {
            Some(f) if f < 1.0 => r1,
            _ => {
                let (mut lo, mut hi) = (1.0, r1);
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    match probe(mid) {
                        Some(f) if f < 1.0 => lo = mid,
                        _ => hi = mid,
                    }
                }
                lo
            }
        }
    }

    /// The asymptotic error exponent: `rate() = ln R`, so that
    /// `tail(k) ≈ e^{−rate·k}` for large `k`. Strictly positive; matches
    /// the paper's `Ω(min(ε³, ε² q_h))` scaling.
    pub fn rate(&self) -> f64 {
        self.radius().ln()
    }

    /// A rigorous upper bound on the tail at window length `k`:
    /// `min_z C̃(z)/z^k` over a grid in `(1, R)`, clamped to `[0, 1]`.
    pub fn tail(&self, k: usize) -> f64 {
        chernoff_min(|z| self.c_tilde_eval(z), self.radius(), k)
    }

    /// A rigorous upper bound on `Σ_{r ≥ k} tail(r)` (used by the
    /// common-prefix Theorem 8): `min_z C̃(z)·z^{−k}/(1 − 1/z)`.
    pub fn tail_sum(&self, k: usize) -> f64 {
        let radius = self.radius();
        let mut best = f64::INFINITY;
        for i in 1..CHERNOFF_GRID {
            let z = 1.0 + (radius - 1.0) * i as f64 / CHERNOFF_GRID as f64;
            if z <= 1.0 {
                continue;
            }
            if let Some(g) = self.c_tilde_eval(z) {
                let v = g * (-(k as f64) * z.ln()).exp() / (1.0 - 1.0 / z);
                best = best.min(v);
            }
        }
        best
    }
}

/// Bound 2 (Section 5.2): the rarity of two consecutive Catalan slots
/// (the consistent tie-breaking model, `p_h` may be 0).
#[derive(Debug, Clone, Copy)]
pub struct Bound2 {
    bias: Bias,
}

impl Bound2 {
    /// Creates the bound for honest margin `ε ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `ε ∉ (0, 1)`.
    pub fn new(epsilon: f64) -> Result<Bound2, ParameterError> {
        Ok(Bound2 {
            bias: Bias::from_epsilon(epsilon)?,
        })
    }

    /// The underlying walk bias.
    pub fn bias(&self) -> Bias {
        self.bias
    }

    /// `Ê(Z) = pZD(Z) + qZ·A(ZD(Z))/A(1)`: the dominating epoch series.
    pub fn epoch_series(&self, terms: usize) -> Series {
        let d = self.bias.descent_series(terms);
        let zd = shift(&d);
        let azd = ascent_of_zd(&self.bias, terms);
        let zazd = shift(&azd);
        zd.scale(self.bias.p())
            .add(&zazd.scale(self.bias.q() / self.bias.ruin()))
    }

    /// `M̂(Z) = ε·D(Z) / (1 − (1 − ε)Ê(Z))`: a probability generating
    /// function dominating the index of the first consecutive Catalan
    /// pair.
    pub fn m_hat_series(&self, terms: usize) -> Series {
        let d = self.bias.descent_series(terms);
        let e = self.epoch_series(terms).scale(1.0 - self.bias.epsilon());
        d.scale(self.bias.epsilon()).div_one_minus(&e)
    }

    /// `M̃(Z) = X_∞(D(Z)) · M̂(Z)`: the long-prefix variant.
    pub fn m_tilde_series(&self, terms: usize) -> Series {
        let m_hat = self.m_hat_series(terms);
        let beta_d = self.bias.descent_series(terms).scale(self.bias.beta());
        m_hat.scale(1.0 - self.bias.beta()).div_one_minus(&beta_d)
    }

    /// Near-exact tail by series expansion (`O(k²)`).
    pub fn tail_exact(&self, k: usize) -> f64 {
        self.m_tilde_series(k + 1).tail_from(k, 1.0)
    }

    /// Closed-form `M̃(z)`; `None` outside convergence.
    pub fn m_tilde_eval(&self, z: f64) -> Option<f64> {
        let d = self.bias.descent_eval(z)?;
        let a_of = self.bias.ascent_eval(z * d)?;
        let e_hat = self.bias.p() * z * d + self.bias.q() * z * a_of / self.bias.ruin();
        let denom = 1.0 - (1.0 - self.bias.epsilon()) * e_hat;
        if denom <= 0.0 {
            return None;
        }
        let m_hat = self.bias.epsilon() * d / denom;
        let beta = self.bias.beta();
        if beta * d >= 1.0 {
            return None;
        }
        Some((1.0 - beta) * m_hat / (1.0 - beta * d))
    }

    /// The radius of convergence (Section 5.2 shows `(1 − ε)Ê(z) < 1`
    /// throughout, so the radius is `R₁`).
    pub fn radius(&self) -> f64 {
        self.bias.composite_radius()
    }

    /// The asymptotic error exponent `ln R ≈ ε³/2` (Equation (11)).
    pub fn rate(&self) -> f64 {
        self.radius().ln()
    }

    /// Rigorous Chernoff tail at window length `k`.
    pub fn tail(&self, k: usize) -> f64 {
        chernoff_min(|z| self.m_tilde_eval(z), self.radius(), k)
    }

    /// Rigorous upper bound on `Σ_{r ≥ k} tail(r)` (for Theorem 8's
    /// tie-breaking variant).
    pub fn tail_sum(&self, k: usize) -> f64 {
        let radius = self.radius();
        let mut best = f64::INFINITY;
        for i in 1..CHERNOFF_GRID {
            let z = 1.0 + (radius - 1.0) * i as f64 / CHERNOFF_GRID as f64;
            if let Some(g) = self.m_tilde_eval(z) {
                if z > 1.0 {
                    let v = g * (-(k as f64) * z.ln()).exp() / (1.0 - 1.0 / z);
                    best = best.min(v);
                }
            }
        }
        best
    }
}

/// Bound 3 (Section 8.2): after a Catalan slot `c`, the probability that
/// the walk ever returns within `Δ` of its level at `c` once `k` further
/// slots have elapsed — the extra tail the Δ-synchronous reduction pays.
#[derive(Debug, Clone, Copy)]
pub struct Bound3 {
    bias: Bias,
    delta: usize,
}

impl Bound3 {
    /// Creates the bound for honest margin `ε` and delay `Δ`.
    ///
    /// # Errors
    ///
    /// Returns an error when `ε ∉ (0, 1)`.
    pub fn new(epsilon: f64, delta: usize) -> Result<Bound3, ParameterError> {
        Ok(Bound3 {
            bias: Bias::from_epsilon(epsilon)?,
            delta,
        })
    }

    /// `f(Δ, t) = Σ_{j ≤ Δ, j ≡ t (2)} C(t, (t+j)/2) p^{(t−j)/2} q^{(t+j)/2}`:
    /// the probability that the ε-biased walk sits within `Δ` of its
    /// starting level after `t` steps (on the favourable side).
    pub fn step_mass(&self, t: usize) -> f64 {
        let lf = LnFactorials::up_to(t);
        self.step_mass_with(&lf, t)
    }

    fn step_mass_with(&self, lf: &LnFactorials, t: usize) -> f64 {
        let ln_p = self.bias.p().ln();
        let ln_q = self.bias.q().ln();
        let mut acc = 0.0;
        for j in 0..=self.delta.min(t) {
            if !(t + j).is_multiple_of(2) {
                continue;
            }
            let down = (t + j) / 2;
            let up = t - down;
            acc += (lf.ln_choose(t, down) + up as f64 * ln_p + down as f64 * ln_q).exp();
        }
        acc
    }

    /// The tail `Σ_{t ≥ k} f(Δ, t)`, truncated once increments become
    /// negligible (the terms decay like `(1 − ε²)^{t/2}`), clamped to 1.
    pub fn tail(&self, k: usize) -> f64 {
        let eps = self.bias.epsilon();
        // Terms shrink by ≈ √(1 − ε²) per step; run until the geometric
        // remainder is below f64 resolution of the accumulated sum.
        let ratio = (1.0 - eps * eps).sqrt();
        let horizon = k + ((700.0 / -ratio.ln()).ceil() as usize).max(64);
        let lf = LnFactorials::up_to(horizon);
        let mut acc = 0.0;
        for t in k..=horizon {
            acc += self.step_mass_with(&lf, t);
            if acc >= 1.0 {
                return 1.0;
            }
        }
        acc.min(1.0)
    }
}

/// `Z · S(Z)`: shift a series by one degree.
fn shift(s: &Series) -> Series {
    let n = s.terms();
    let mut c = Vec::with_capacity(n);
    c.push(0.0);
    c.extend((1..n).map(|t| s.coefficient(t - 1)));
    Series::from_coefficients(c)
}

/// The composite `A(Z·D(Z))` as a series: `Σ_m a_{2m+1} (ZD)^{2m+1}`.
fn ascent_of_zd(bias: &Bias, terms: usize) -> Series {
    let a = bias.ascent_series(terms);
    let d = bias.descent_series(terms);
    let w = shift(&d); // Z·D — minimum degree 2
    let w2 = w.mul(&w);
    let mut power = w.clone(); // W^{2m+1}, starting at m = 0
    let mut acc = Series::zeros(terms);
    let mut m = 0usize;
    loop {
        let coeff = a.coefficient(2 * m + 1);
        if 2 * (2 * m + 1) >= terms {
            break;
        }
        if coeff != 0.0 {
            acc = acc.add(&power.scale(coeff));
        }
        power = power.mul(&w2);
        m += 1;
    }
    acc
}

/// `min_z g(z)/z^k` over a grid in `(1, radius)`, clamped to `[0, 1]`.
fn chernoff_min<G: Fn(f64) -> Option<f64>>(g: G, radius: f64, k: usize) -> f64 {
    let mut best = 1.0f64;
    for i in 1..CHERNOFF_GRID {
        let z = 1.0 + (radius - 1.0) * i as f64 / CHERNOFF_GRID as f64;
        if z <= 1.0 {
            continue;
        }
        if let Some(gz) = g(z) {
            // g(z)·e^{−k ln z}: compute in log space to avoid underflow of
            // z^{-k} for large k.
            let v = gz * (-(k as f64) * z.ln()).exp();
            best = best.min(v);
        }
    }
    best.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_hat_is_probability_series() {
        let b = Bound1::new(0.3, 0.4).unwrap();
        let c = b.c_hat_series(3000);
        let total = c.partial_sum(3000);
        assert!((total - 1.0).abs() < 1e-5, "Ĉ(1) = {total}");
        // All coefficients non-negative.
        assert!(c.coefficients().iter().all(|&x| x >= -1e-15));
    }

    #[test]
    fn c_tilde_is_probability_series() {
        let b = Bound1::new(0.3, 0.4).unwrap();
        let c = b.c_tilde_series(4000);
        let total = c.partial_sum(4000);
        assert!((total - 1.0).abs() < 1e-4, "C̃(1) = {total}");
    }

    #[test]
    fn m_hat_is_probability_series() {
        let b = Bound2::new(0.3).unwrap();
        let m = b.m_hat_series(3000);
        let total = m.partial_sum(3000);
        assert!((total - 1.0).abs() < 1e-5, "M̂(1) = {total}");
    }

    #[test]
    fn chernoff_dominates_series_tail() {
        // The Chernoff bound must upper-bound the near-exact series tail.
        let b = Bound1::new(0.2, 0.3).unwrap();
        for k in [10, 50, 150] {
            let exact = b.tail_exact(k);
            let chern = b.tail(k);
            assert!(
                chern >= exact - 1e-12,
                "k = {k}: chernoff {chern} < exact {exact}"
            );
        }
        let b2 = Bound2::new(0.2).unwrap();
        for k in [10, 50, 150] {
            assert!(b2.tail(k) >= b2.tail_exact(k) - 1e-12, "k = {k}");
        }
    }

    #[test]
    fn tails_decay_exponentially() {
        let b = Bound1::new(0.25, 0.3).unwrap();
        let t100 = b.tail(100);
        let t200 = b.tail(200);
        let t400 = b.tail(400);
        assert!(t200 < t100 && t400 < t200);
        // Asymptotically the log-tail slope approaches −rate: at large k
        // the measured slope must sit within [0.5, 1.0]·rate (the Chernoff
        // constant C̃(z*) eats some of the exponent at finite k, never
        // improves it).
        let rate = b.rate();
        let k = 4000.0;
        let slope = -b.tail(4000).ln() / k;
        assert!(slope <= rate + 1e-12, "slope {slope} exceeds rate {rate}");
        assert!(
            slope >= 0.5 * rate,
            "slope {slope} too shallow vs rate {rate}"
        );
    }

    #[test]
    fn rate_scales_with_epsilon_and_qh() {
        // Ω(min(ε³, ε²q_h)): rate grows with both parameters.
        let base = Bound1::new(0.1, 0.2).unwrap().rate();
        let more_eps = Bound1::new(0.2, 0.2).unwrap().rate();
        let more_qh = Bound1::new(0.1, 0.4).unwrap().rate();
        assert!(base > 0.0);
        assert!(more_eps > base);
        assert!(more_qh >= base);
        // When q_h is tiny the rate collapses towards zero (ε²q_h regime).
        let tiny = Bound1::new(0.1, 1e-4).unwrap().rate();
        assert!(tiny < base / 2.0);
    }

    #[test]
    fn bound2_rate_matches_eps_cubed_over_two() {
        // Equation (5)/(11): ln R₁ = ε³/2 · (1 + O(ε)).
        for eps in [0.05, 0.1, 0.2] {
            let r = Bound2::new(eps).unwrap().rate();
            let predicted = eps.powi(3) / 2.0;
            assert!(
                (r / predicted - 1.0).abs() < 0.35,
                "eps = {eps}: rate {r} vs ε³/2 = {predicted}"
            );
        }
    }

    #[test]
    fn bound1_recovers_bound2_regime_when_qh_saturates() {
        // With q_h = q (no H slots), Bound 1's radius is the composite
        // radius (the paper: recovers the bound of [4]).
        let eps = 0.2;
        let b = Bound1::new(eps, (1.0 + eps) / 2.0).unwrap();
        let r1 = b.bias().composite_radius();
        assert!((b.radius() - r1).abs() < 1e-6);
    }

    #[test]
    fn bound3_basics() {
        let b = Bound3::new(0.3, 2).unwrap();
        // f(Δ, 0) = 1 (the walk starts within Δ of itself, j = 0 term).
        assert!((b.step_mass(0) - 1.0).abs() < 1e-12);
        // Tail decreases in k and increases in Δ.
        let t10 = b.tail(10);
        let t40 = b.tail(40);
        assert!(t40 < t10);
        let wider = Bound3::new(0.3, 8).unwrap().tail(10);
        assert!(wider >= t10);
        // Larger ε decays faster.
        let sharp = Bound3::new(0.5, 2).unwrap().tail(40);
        assert!(sharp < t40);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Bound1::new(0.2, 0.0).is_err());
        assert!(Bound1::new(0.2, 0.9).is_err());
        assert!(Bound1::new(1.2, 0.1).is_err());
        assert!(Bound2::new(0.0).is_err());
        assert!(Bound3::new(2.0, 1).is_err());
    }
}
