//! End-to-end campaign contracts: the rendered report is a pure
//! function of the [`CampaignSpec`] — byte-identical across thread
//! counts and across any interrupt/resume history — and large
//! heterogeneous stake profiles run without tripping the stake-sum
//! validation.

use std::path::PathBuf;

use multihonest_sim::TieBreak;
use multihonest_sweep::{
    campaign_report, report_csv, report_json, run_campaign, CampaignSpec, Checkpoint, FaultProfile,
    RunOptions, StakeProfile, SweepStrategy,
};

/// A 6-cell grid small enough for CI but wide enough to exercise every
/// strategy kind, both stake profiles, and a non-zero Δ.
fn test_spec() -> CampaignSpec {
    CampaignSpec {
        strategies: vec![
            SweepStrategy::Honest,
            SweepStrategy::Withholding { release_lag: 2 },
            SweepStrategy::Balance,
        ],
        deltas: vec![0, 3],
        profiles: vec![StakeProfile::Uniform, StakeProfile::Zipf],
        honest_nodes: 6,
        adversarial_stake: 0.25,
        active_slot_coeff: 0.2,
        tie_break: TieBreak::AdversarialOrder,
        slots: 200,
        trials_per_cell: 70, // not a multiple of the chunk size
        ks: vec![4, 12],
        seed: 0xC0FFEE,
        faults: vec![FaultProfile::None],
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("multihonest-sweep-itest");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn report_bytes_are_thread_count_invariant() {
    let spec = test_spec();
    let mut rendered = Vec::new();
    for threads in [1usize, 4, 8] {
        let opts = RunOptions {
            threads,
            ..RunOptions::default()
        };
        let outcome = run_campaign(&spec, &opts).unwrap();
        assert!(outcome.is_complete(), "threads = {threads}");
        assert_eq!(outcome.executions_run, spec.executions());
        let report = campaign_report(&spec, &outcome);
        rendered.push((threads, report_json(&report), report_csv(&report)));
    }
    let (_, base_json, base_csv) = &rendered[0];
    for (threads, json, csv) in &rendered[1..] {
        assert_eq!(json, base_json, "JSON differs at {threads} threads");
        assert_eq!(csv, base_csv, "CSV differs at {threads} threads");
    }
}

#[test]
fn interrupted_campaign_resumes_byte_identically() {
    let spec = test_spec();

    // The oracle: one uninterrupted single-threaded run.
    let straight = run_campaign(&spec, &RunOptions::default()).unwrap();
    let oracle = report_json(&campaign_report(&spec, &straight));

    // Interrupt after 1, 2, … cells; resume with a different thread
    // count each time. Every history must reproduce the oracle bytes.
    for (interrupt_after, resume_threads) in [(1usize, 4usize), (2, 1), (4, 8)] {
        let path = scratch(&format!("resume-{interrupt_after}-{resume_threads}.json"));
        let _ = std::fs::remove_file(&path);

        let first = run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                checkpoint: Some(path.clone()),
                stop_after_cells: Some(interrupt_after),
            },
        )
        .unwrap();
        assert!(
            !first.is_complete(),
            "stop_after_cells = {interrupt_after} must interrupt the 6-cell grid"
        );
        assert!(first.completed_cells >= interrupt_after);

        // The checkpoint on disk holds exactly the completed cells.
        let snapshot = Checkpoint::load(&path, spec.fingerprint())
            .unwrap()
            .expect("checkpoint written");
        assert_eq!(snapshot.completed.len(), first.completed_cells);

        let resumed = run_campaign(
            &spec,
            &RunOptions {
                threads: resume_threads,
                checkpoint: Some(path.clone()),
                stop_after_cells: None,
            },
        )
        .unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.resumed_cells, first.completed_cells);
        assert_eq!(
            resumed.executions_run,
            spec.executions() - first.completed_cells as u64 * spec.trials_per_cell
        );

        let rendered = report_json(&campaign_report(&spec, &resumed));
        assert_eq!(
            rendered, oracle,
            "interrupt after {interrupt_after} cells, resume on {resume_threads} threads"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn resuming_a_complete_campaign_runs_nothing() {
    let spec = test_spec();
    let path = scratch("complete.json");
    let _ = std::fs::remove_file(&path);
    let opts = RunOptions {
        threads: 2,
        checkpoint: Some(path.clone()),
        stop_after_cells: None,
    };
    let first = run_campaign(&spec, &opts).unwrap();
    assert!(first.is_complete());
    let again = run_campaign(&spec, &opts).unwrap();
    assert!(again.is_complete());
    assert_eq!(
        again.executions_run, 0,
        "everything came from the checkpoint"
    );
    assert_eq!(again.resumed_cells, spec.cell_count());
    assert_eq!(
        report_json(&campaign_report(&spec, &again)),
        report_json(&campaign_report(&spec, &first)),
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_from_a_different_spec_is_rejected() {
    let spec = test_spec();
    let path = scratch("foreign.json");
    let _ = std::fs::remove_file(&path);
    run_campaign(
        &spec,
        &RunOptions {
            threads: 1,
            checkpoint: Some(path.clone()),
            stop_after_cells: Some(1),
        },
    )
    .unwrap();

    let mut other = test_spec();
    other.seed ^= 1;
    let err = run_campaign(
        &other,
        &RunOptions {
            threads: 1,
            checkpoint: Some(path.clone()),
            stop_after_cells: None,
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("different campaign"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

/// The fault axis rides the same determinism contract as every other
/// grid dimension: a faulty campaign is thread-count invariant and
/// resumes byte-identically through an interrupt.
#[test]
fn faulty_campaign_is_deterministic_and_resumable() {
    let mut spec = test_spec();
    spec.strategies = vec![SweepStrategy::Honest, SweepStrategy::Balance];
    spec.deltas = vec![1];
    spec.profiles = vec![StakeProfile::Uniform];
    spec.faults = vec![FaultProfile::None, FaultProfile::PartitionHalves];
    spec.trials_per_cell = 40;

    let straight = run_campaign(&spec, &RunOptions::default()).unwrap();
    assert!(straight.is_complete());
    let report = campaign_report(&spec, &straight);
    let oracle = report_json(&report);

    // Faulty cells degrade; their fault-free twins do not.
    for cell in &report.cells {
        if cell.fault == "none" {
            assert_eq!(cell.deferred_deliveries, 0, "{}", cell.cell);
            assert_eq!(cell.worst_effective_delta, 0, "{}", cell.cell);
        } else {
            assert!(cell.deferred_deliveries > 0, "{}", cell.cell);
            assert!(
                cell.worst_effective_delta <= cell.delta_prime.unwrap(),
                "{}: effective Δ escaped the static bound",
                cell.cell
            );
        }
        assert_eq!(cell.dropped_deliveries, 0, "bounded plans drop nothing");
    }

    let threaded = run_campaign(
        &spec,
        &RunOptions {
            threads: 4,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(report_json(&campaign_report(&spec, &threaded)), oracle);

    let path = scratch("faulty-resume.json");
    let _ = std::fs::remove_file(&path);
    let first = run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            checkpoint: Some(path.clone()),
            stop_after_cells: Some(2),
        },
    )
    .unwrap();
    assert!(!first.is_complete());
    let resumed = run_campaign(
        &spec,
        &RunOptions {
            threads: 3,
            checkpoint: Some(path.clone()),
            stop_after_cells: None,
        },
    )
    .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(report_json(&campaign_report(&spec, &resumed)), oracle);
    std::fs::remove_file(&path).unwrap();
}

/// The torn-write regression, end to end: truncating the checkpoint
/// mid-cell-line must not poison the campaign — the salvaged prefix
/// resumes and the final report is byte-identical to an uninterrupted
/// run.
#[test]
fn torn_checkpoint_tail_resumes_byte_identically() {
    let spec = test_spec();
    let straight = run_campaign(&spec, &RunOptions::default()).unwrap();
    let oracle = report_json(&campaign_report(&spec, &straight));

    let path = scratch("torn-tail.json");
    let _ = std::fs::remove_file(&path);
    run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            checkpoint: Some(path.clone()),
            stop_after_cells: Some(3),
        },
    )
    .unwrap();

    // Tear the file mid-way through its final cell line.
    let bytes = std::fs::read(&path).unwrap();
    let cells_in_file = bytes.iter().filter(|&&b| b == b'\n').count() - 1;
    assert!(cells_in_file >= 3, "interrupt flushed the completed cells");
    let last_line_start = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .expect("multi-line checkpoint")
        + 1;
    let cut = last_line_start + (bytes.len() - last_line_start) / 2;
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let resumed = run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            checkpoint: Some(path.clone()),
            stop_after_cells: None,
        },
    )
    .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.resumed_cells,
        cells_in_file - 1,
        "the torn cell must be recomputed, not trusted"
    );
    assert_eq!(report_json(&campaign_report(&spec, &resumed)), oracle);
    std::fs::remove_file(&path).unwrap();
}

/// The regression the stake-validation bugfix protects: a zipf stake
/// profile over 10⁴ honest nodes must pass `validate_stake_partition`
/// (the old absolute-tolerance naive sum was one refactor away from
/// rejecting exactly this) and run to completion.
#[test]
fn zipf_ten_thousand_nodes_campaign_runs() {
    let spec = CampaignSpec {
        strategies: vec![SweepStrategy::Withholding { release_lag: 0 }],
        deltas: vec![1],
        profiles: vec![StakeProfile::Zipf],
        honest_nodes: 10_000,
        adversarial_stake: 0.3,
        active_slot_coeff: 0.25,
        tie_break: TieBreak::AdversarialOrder,
        slots: 40,
        trials_per_cell: 2,
        ks: vec![4],
        seed: 99,
        faults: vec![FaultProfile::None],
    };
    let stakes = spec.stakes_for(&spec.cells()[0]);
    assert_eq!(stakes.len(), 10_000);
    multihonest_sim::validate_stake_partition(&stakes, spec.adversarial_stake);

    let outcome = run_campaign(&spec, &RunOptions::default()).unwrap();
    assert!(outcome.is_complete());
    let report = campaign_report(&spec, &outcome);
    assert_eq!(report.cells.len(), 1);
    assert_eq!(report.cells[0].trials, 2);
}
