//! The campaign report layer: JSON + CSV, with analytic comparisons.
//!
//! A [`CampaignReport`] is derived **deterministically** from the
//! integer [`CellAggregate`]s — it carries no timing, no thread count,
//! no timestamps — so two runs of the same spec render byte-identical
//! reports whatever their execution history was (1 vs 8 threads,
//! straight vs interrupt/resume). Timing lives one layer up, in the
//! bench wrapper (`BENCH_sweep.json`).
//!
//! Per `(cell, k)` the report carries the empirical violation frequency
//! with a 95% Wilson interval, the mean number of violating anchor
//! slots, and two theory columns: the closed-form Theorem 7 tail bound
//! of `crates/analytic`, and the **exact** settlement-violation
//! probability of the margin DP evaluated on the cell's Δ-reduced
//! Bernoulli condition. The DP's horizon counts *reduced* symbols while
//! the empirical anchors count slots, so the exact column is a
//! comparison curve (per-anchor violation probability), not an estimate
//! of the same statistic — the report documents it as such.

use multihonest_adversary::montecarlo::Estimate;
use multihonest_analytic::theorem7_bound;
use multihonest_chars::{DistributionError, SemiSyncCondition};
use multihonest_margin::ExactSettlement;
use serde::Serialize;

use crate::aggregate::CellAggregate;
use crate::run::CampaignOutcome;
use crate::spec::{CampaignSpec, CellSpec};

/// Schema tag of the campaign report.
pub const REPORT_SCHEMA: &str = "multihonest-sweep-campaign/v2";

/// The per-`k` settlement block of one cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SettlementEstimate {
    /// Settlement parameter.
    pub k: u64,
    /// Executions with ≥ 1 violating anchor.
    pub violating_executions: u64,
    /// Total violating anchor slots over all executions.
    pub violating_anchors: u64,
    /// Empirical per-execution violation frequency.
    pub frequency: f64,
    /// 95% Wilson interval lower bound.
    pub wilson_low: f64,
    /// 95% Wilson interval upper bound.
    pub wilson_high: f64,
    /// Mean violating anchors per execution.
    pub mean_violating_anchors: f64,
    /// Theorem 7 closed-form tail bound (per anchor), when the cell's
    /// condition admits it.
    pub theorem7_bound: Option<f64>,
    /// Exact per-anchor violation probability of the margin DP on the
    /// Δ-reduced condition (horizon in reduced symbols — a comparison
    /// curve, not the same statistic as `frequency`).
    pub exact_reduced: Option<f64>,
}

/// One completed grid cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellReport {
    /// Row-major cell index.
    pub cell: u64,
    /// Strategy axis value ([`SweepStrategy::name`]).
    ///
    /// [`SweepStrategy::name`]: crate::SweepStrategy::name
    pub strategy: String,
    /// Δ axis value.
    pub delta: u64,
    /// Stake-profile axis value ([`StakeProfile::name`]).
    ///
    /// [`StakeProfile::name`]: crate::StakeProfile::name
    pub profile: String,
    /// Fault-profile axis value ([`FaultProfile::name`]).
    ///
    /// [`FaultProfile::name`]: crate::FaultProfile::name
    pub fault: String,
    /// The static Δ′ bound of the cell's fault plan over its Δ (equal to
    /// `delta` for fault-free cells; `None` for unbounded plans). Theory
    /// columns are evaluated at this Δ′, which is what keeps them
    /// conservative for faulty cells.
    pub delta_prime: Option<u64>,
    /// Fault-deferred delivery events summed over trials.
    pub deferred_deliveries: u64,
    /// Fault-parked deliveries dropped at the horizon, summed over
    /// trials.
    pub dropped_deliveries: u64,
    /// Worst observed effective Δ in any trial (0 = no fault deferral).
    pub worst_effective_delta: u64,
    /// Trials folded into this cell.
    pub trials: u64,
    /// Total honest rollbacks across trials.
    pub rollbacks: u64,
    /// Maximum slot divergence seen in any trial.
    pub max_slot_divergence: u64,
    /// Maximum settlement lag seen in any trial (`-1` = none).
    pub max_settlement_lag: i64,
    /// Mean final chain height.
    pub mean_final_height: f64,
    /// Mean chain-quality (honest blocks / chain blocks) of final chains.
    pub chain_quality: f64,
    /// Mean active slots per execution.
    pub mean_active_slots: f64,
    /// Order-invariant aggregate fingerprint (see [`CellAggregate`]).
    pub fingerprint: u64,
    /// Per-`k` settlement estimates, aligned with the spec's `ks`.
    pub settlement: Vec<SettlementEstimate>,
}

/// The full campaign report. Timing-free by design; see module docs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignReport {
    /// Always [`REPORT_SCHEMA`].
    pub schema: String,
    /// The spec fingerprint (ties the report to its checkpoint family).
    pub spec_fingerprint: u64,
    /// Root seed of the seed-sharding scheme.
    pub root_seed: u64,
    /// Slots per execution.
    pub slots: u64,
    /// Trials per cell.
    pub trials_per_cell: u64,
    /// Honest node count.
    pub honest_nodes: u64,
    /// Adversarial relative stake.
    pub adversarial_stake: f64,
    /// Active-slot coefficient.
    pub active_slot_coeff: f64,
    /// Grid size.
    pub total_cells: u64,
    /// Cells with complete aggregates in this report.
    pub completed_cells: u64,
    /// Total executions folded into the report.
    pub executions: u64,
    /// Completed cells, sorted by index.
    pub cells: Vec<CellReport>,
}

/// The per-slot leadership condition under φ-aggregation of a stake
/// split: `f` is exact (the φ aggregation property: `Pr[some leader] =
/// f` whatever the split), `p_A = φ(adversarial stake)`, and `p_h` is
/// the probability of a *unique* honest leader. Shared by the campaign
/// report and the fault conservatism harness.
pub fn leadership_condition(
    active_slot_coeff: f64,
    adversarial_stake: f64,
    stakes: &[f64],
) -> Result<SemiSyncCondition, DistributionError> {
    let f = active_slot_coeff;
    let phi = |alpha: f64| 1.0 - (1.0 - f).powf(alpha);
    let q = phi(adversarial_stake);
    let prod: f64 = stakes.iter().map(|&s| 1.0 - phi(s)).product();
    let sum_unique: f64 = stakes.iter().map(|&s| phi(s) / (1.0 - phi(s))).sum::<f64>() * prod;
    let p_h = (1.0 - q) * sum_unique;
    SemiSyncCondition::new(f, q, p_h)
}

/// The leadership condition of a cell (its stake profile under
/// [`leadership_condition`]).
fn cell_condition(
    spec: &CampaignSpec,
    cell: &CellSpec,
) -> Result<SemiSyncCondition, DistributionError> {
    leadership_condition(
        spec.active_slot_coeff,
        spec.adversarial_stake,
        &spec.stakes_for(cell),
    )
}

/// Builds the report from a campaign outcome. Incomplete cells (an
/// interrupted run) are simply absent; a completed campaign reports
/// every cell.
pub fn campaign_report(spec: &CampaignSpec, outcome: &CampaignOutcome) -> CampaignReport {
    let cells = spec.cells();
    let mut reports = Vec::with_capacity(outcome.completed_cells);
    for (cell, agg) in cells.iter().zip(&outcome.aggregates) {
        let Some(agg) = agg else { continue };
        reports.push(cell_report(spec, cell, agg));
    }
    CampaignReport {
        schema: REPORT_SCHEMA.to_string(),
        spec_fingerprint: spec.fingerprint(),
        root_seed: spec.seed,
        slots: spec.slots as u64,
        trials_per_cell: spec.trials_per_cell,
        honest_nodes: spec.honest_nodes as u64,
        adversarial_stake: spec.adversarial_stake,
        active_slot_coeff: spec.active_slot_coeff,
        total_cells: spec.cell_count() as u64,
        completed_cells: reports.len() as u64,
        executions: reports.iter().map(|c: &CellReport| c.trials).sum(),
        cells: reports,
    }
}

fn cell_report(spec: &CampaignSpec, cell: &CellSpec, agg: &CellAggregate) -> CellReport {
    let trials = agg.trials.max(1) as f64;
    // Theory columns: shared by every k of the cell, evaluated at the
    // fault plan's static Δ′ bound (= Δ for fault-free cells) so they
    // stay conservative for the degraded network; absent when the plan
    // is unbounded.
    let delta_prime = cell
        .fault
        .plan(spec.honest_nodes, spec.slots)
        .worst_case_delta(cell.delta);
    let condition = cell_condition(spec, cell);
    let exact = condition
        .as_ref()
        .ok()
        .zip(delta_prime)
        .and_then(|(c, dp)| c.reduced_condition(dp).ok())
        .map(ExactSettlement::new);
    let exact_probs: Option<Vec<f64>> = exact.map(|e| e.violation_probabilities(&spec.ks));
    let settlement = spec
        .ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let estimate = Estimate {
                hits: agg.violating_executions[i],
                trials: agg.trials,
            };
            let (wilson_low, wilson_high) = estimate.wilson_interval(1.96);
            SettlementEstimate {
                k: k as u64,
                violating_executions: agg.violating_executions[i],
                violating_anchors: agg.violating_anchors[i],
                frequency: estimate.frequency(),
                wilson_low,
                wilson_high,
                mean_violating_anchors: agg.violating_anchors[i] as f64 / trials,
                theorem7_bound: condition
                    .as_ref()
                    .ok()
                    .zip(delta_prime)
                    .and_then(|(c, dp)| theorem7_bound(c, dp, k).ok()),
                exact_reduced: exact_probs.as_ref().map(|p| p[i]),
            }
        })
        .collect();
    CellReport {
        cell: cell.index as u64,
        strategy: cell.strategy.name(),
        delta: cell.delta as u64,
        profile: cell.profile.name().to_string(),
        fault: cell.fault.name(),
        delta_prime: delta_prime.map(|d| d as u64),
        deferred_deliveries: agg.deferred_deliveries,
        dropped_deliveries: agg.dropped_deliveries,
        worst_effective_delta: agg.worst_effective_delta,
        trials: agg.trials,
        rollbacks: agg.rollbacks,
        max_slot_divergence: agg.max_slot_divergence,
        max_settlement_lag: agg.max_settlement_lag,
        mean_final_height: agg.final_height as f64 / trials,
        chain_quality: if agg.chain_blocks == 0 {
            1.0
        } else {
            agg.honest_chain_blocks as f64 / agg.chain_blocks as f64
        },
        mean_active_slots: agg.active_slots as f64 / trials,
        fingerprint: agg.fingerprint,
        settlement,
    }
}

/// Renders the report as pretty JSON (trailing newline included) —
/// the byte stream the resume/thread-invariance tests compare.
pub fn report_json(report: &CampaignReport) -> String {
    let mut out = serde_json::to_string_pretty(report).expect("serializable");
    out.push('\n');
    out
}

/// Renders the report as CSV: one row per `(cell, k)`, empty theory
/// columns when the cell's condition does not admit them.
pub fn report_csv(report: &CampaignReport) -> String {
    let mut out = String::from(
        "cell,strategy,delta,profile,fault,delta_prime,k,trials,violating_executions,frequency,\
         wilson_low,wilson_high,mean_violating_anchors,theorem7_bound,exact_reduced\n",
    );
    for cell in &report.cells {
        for s in &cell.settlement {
            let opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                cell.cell,
                cell.strategy,
                cell.delta,
                cell.profile,
                cell.fault,
                cell.delta_prime.map(|d| d.to_string()).unwrap_or_default(),
                s.k,
                cell.trials,
                s.violating_executions,
                s.frequency,
                s.wilson_low,
                s.wilson_high,
                s.mean_violating_anchors,
                opt(s.theorem7_bound),
                opt(s.exact_reduced),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_campaign, RunOptions};
    use crate::spec::{FaultProfile, StakeProfile, SweepStrategy};
    use multihonest_sim::TieBreak;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            strategies: vec![
                SweepStrategy::Honest,
                SweepStrategy::Withholding { release_lag: 0 },
            ],
            deltas: vec![0, 2],
            profiles: vec![StakeProfile::Uniform],
            faults: vec![FaultProfile::None],
            honest_nodes: 5,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.25,
            tie_break: TieBreak::AdversarialOrder,
            slots: 120,
            trials_per_cell: 6,
            ks: vec![4, 16],
            seed: 11,
        }
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let spec = tiny_spec();
        let outcome = run_campaign(&spec, &RunOptions::default()).unwrap();
        assert!(outcome.is_complete());
        let report = campaign_report(&spec, &outcome);
        assert_eq!(report.completed_cells, 4);
        assert_eq!(report.executions, 24);
        for cell in &report.cells {
            assert_eq!(cell.trials, 6);
            assert_eq!(cell.settlement.len(), 2);
            for s in &cell.settlement {
                assert!(s.frequency >= s.wilson_low - 1e-12);
                assert!(s.frequency <= s.wilson_high + 1e-12);
                if let Some(b) = s.theorem7_bound {
                    assert!((0.0..=1.0).contains(&b));
                }
                if let Some(e) = s.exact_reduced {
                    assert!((0.0..=1.0).contains(&e));
                }
            }
        }
        // Withholding must violate at least as often as honest play at
        // the same Δ (k = 4 at 120 slots sees violations readily).
        let freq = |strategy: &str, delta: u64| {
            report
                .cells
                .iter()
                .find(|c| c.strategy == strategy && c.delta == delta)
                .expect("cell present")
                .settlement[0]
                .frequency
        };
        assert!(freq("withhold-lag0", 2) >= freq("honest", 2));
        // Rendering is a pure function of the report.
        assert_eq!(report_json(&report), report_json(&report));
        let csv = report_csv(&report);
        assert_eq!(csv.lines().count(), 1 + 4 * 2, "header + (cells × ks)");
    }

    #[test]
    fn fault_cells_report_degradation_at_delta_prime() {
        // A sparse spec keeps the Δ′-shifted theory columns admissible.
        let mut spec = tiny_spec();
        spec.active_slot_coeff = 0.05;
        spec.strategies = vec![SweepStrategy::Honest];
        spec.deltas = vec![1];
        spec.faults = vec![FaultProfile::None, FaultProfile::PartitionHalves];
        spec.slots = 200;
        spec.trials_per_cell = 24;
        let outcome = run_campaign(&spec, &RunOptions::default()).unwrap();
        let report = campaign_report(&spec, &outcome);
        assert_eq!(report.completed_cells, 2);
        let clean = &report.cells[0];
        let faulty = &report.cells[1];
        assert_eq!(clean.fault, "none");
        assert_eq!(faulty.fault, "partition-halves");
        // Fault-free cells: Δ′ = Δ, zero degradation.
        assert_eq!(clean.delta_prime, Some(1));
        assert_eq!(clean.deferred_deliveries, 0);
        assert_eq!(clean.worst_effective_delta, 0);
        // Faulty cells: Δ′ = Δ + window length, degradation recorded and
        // within the static bound, nothing dropped.
        assert_eq!(faulty.delta_prime, Some(5));
        assert!(faulty.deferred_deliveries > 0, "the partition must bite");
        assert_eq!(faulty.dropped_deliveries, 0);
        assert!(faulty.worst_effective_delta <= 5);
        for s in &faulty.settlement {
            assert!(s.theorem7_bound.is_some(), "Δ′ = 5 stays admissible");
            assert!(s.exact_reduced.is_some());
        }
        let csv = report_csv(&report);
        assert!(csv.lines().next().unwrap().contains("fault,delta_prime"));
        assert!(csv.contains("partition-halves"));
    }

    #[test]
    fn theory_columns_follow_condition_20() {
        // A sparse chain (f = 0.05) satisfies Theorem 7's condition (20)
        // for every Δ of the grid, so both theory columns are present.
        let mut sparse = tiny_spec();
        sparse.active_slot_coeff = 0.05;
        sparse.deltas = vec![0, 2, 4];
        sparse.slots = 80;
        sparse.trials_per_cell = 2;
        let cond =
            cell_condition(&sparse, &sparse.cells()[0]).expect("sparse setting is admissible");
        // φ aggregation: Pr[some leader] = f exactly.
        assert!((cond.f() - sparse.active_slot_coeff).abs() < 1e-12);
        let outcome = run_campaign(&sparse, &RunOptions::default()).unwrap();
        let report = campaign_report(&sparse, &outcome);
        for cell in &report.cells {
            for s in &cell.settlement {
                assert!(s.theorem7_bound.is_some(), "Δ = {} k = {}", cell.delta, s.k);
                assert!(s.exact_reduced.is_some());
            }
        }

        // The dense tiny spec (f = 0.25) breaks condition (20) at Δ = 2:
        // the reduced adversarial probability reaches ½ and both theory
        // columns are rightly absent, while Δ = 0 still admits them.
        let dense = tiny_spec();
        let outcome = run_campaign(&dense, &RunOptions::default()).unwrap();
        let report = campaign_report(&dense, &outcome);
        for cell in &report.cells {
            for s in &cell.settlement {
                assert_eq!(
                    s.theorem7_bound.is_some(),
                    cell.delta == 0,
                    "Δ = {}",
                    cell.delta
                );
                assert_eq!(s.exact_reduced.is_some(), cell.delta == 0);
            }
        }
    }
}
