//! Per-cell campaign aggregates: commutative integer folds.
//!
//! Everything a campaign retains per grid cell is an integer sum, max,
//! or order-invariant fingerprint over its trials — so merging chunk
//! results in *any* order (different thread counts, work-stealing claim
//! orders, interrupt/resume splits) yields bit-identical aggregates, and
//! every derived statistic in the report layer is computed from these
//! integers deterministically at the end. No floating-point accumulation
//! happens during the run at all.

use multihonest_sim::consistency::DivergenceIndex;
use multihonest_sim::metrics::Metrics;
use serde::Serialize;

use crate::spec::mix;

/// The retained aggregate of one grid cell. All counters fold
/// commutatively; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CellAggregate {
    /// Trials folded in so far.
    pub trials: u64,
    /// Per `k` (aligned with the spec's `ks`): executions with at least
    /// one violating anchor.
    pub violating_executions: Vec<u64>,
    /// Per `k`: total violating anchor slots summed over executions.
    pub violating_anchors: Vec<u64>,
    /// Total honest rollbacks over all trials.
    pub rollbacks: u64,
    /// Maximum slot divergence observed in any trial.
    pub max_slot_divergence: u64,
    /// Maximum settlement lag observed in any trial (`-1` = none ever).
    pub max_settlement_lag: i64,
    /// Total blocks on final chains, summed over trials.
    pub chain_blocks: u64,
    /// Honest blocks among [`CellAggregate::chain_blocks`].
    pub honest_chain_blocks: u64,
    /// Final chain heights summed over trials.
    pub final_height: u64,
    /// Slots with at least one leader, summed over trials.
    pub active_slots: u64,
    /// Fault-deferred delivery events (parks and re-parks) summed over
    /// trials; 0 in fault-free cells.
    pub deferred_deliveries: u64,
    /// Fault-parked deliveries dropped at the horizon, summed over
    /// trials; 0 for bounded fault plans.
    pub dropped_deliveries: u64,
    /// Worst observed effective Δ (delivery slot − broadcast slot over
    /// fault-deferred honest deliveries) in any trial; 0 when no fault
    /// ever deferred.
    pub worst_effective_delta: u64,
    /// Order-invariant fingerprint: the wrapping sum of one SplitMix64
    /// word per trial (seed + headline outcomes). Any drift in any
    /// trial's execution flips it; trial order cannot. The degradation
    /// counters above stay **outside** this word, so a fault-free cell's
    /// fingerprint is unchanged from pre-fault-axis campaigns.
    pub fingerprint: u64,
}

impl CellAggregate {
    /// An empty aggregate for `num_ks` settlement parameters.
    pub fn new(num_ks: usize) -> CellAggregate {
        CellAggregate {
            trials: 0,
            violating_executions: vec![0; num_ks],
            violating_anchors: vec![0; num_ks],
            rollbacks: 0,
            max_slot_divergence: 0,
            max_settlement_lag: -1,
            chain_blocks: 0,
            honest_chain_blocks: 0,
            final_height: 0,
            active_slots: 0,
            deferred_deliveries: 0,
            dropped_deliveries: 0,
            worst_effective_delta: 0,
            fingerprint: 0,
        }
    }

    /// Folds one trial's fault [`DegradationLedger`] in (call alongside
    /// [`CellAggregate::record`] for cells with a non-empty fault plan).
    pub fn record_faults(&mut self, ledger: &multihonest_sim::DegradationLedger) {
        self.deferred_deliveries += ledger.deferred;
        self.dropped_deliveries += ledger.dropped;
        self.worst_effective_delta = self
            .worst_effective_delta
            .max(ledger.worst_effective_delta as u64);
    }

    /// Folds one finished trial in.
    pub fn record(
        &mut self,
        trial_seed: u64,
        metrics: &Metrics,
        index: &DivergenceIndex,
        ks: &[usize],
        slots: usize,
    ) {
        debug_assert_eq!(ks.len(), self.violating_executions.len());
        self.trials += 1;
        let mut word = mix(trial_seed);
        for (i, &k) in ks.iter().enumerate() {
            let anchors = index.count_violations(k, slots) as u64;
            self.violating_anchors[i] += anchors;
            self.violating_executions[i] += u64::from(anchors > 0);
            word = mix(word ^ anchors);
        }
        self.rollbacks += metrics.rollback_count as u64;
        self.max_slot_divergence = self
            .max_slot_divergence
            .max(metrics.max_slot_divergence as u64);
        let lag = metrics.max_settlement_lag.map_or(-1, |l| l as i64);
        self.max_settlement_lag = self.max_settlement_lag.max(lag);
        self.chain_blocks += metrics.chain_blocks as u64;
        self.honest_chain_blocks += metrics.honest_chain_blocks as u64;
        self.final_height += metrics.final_height as u64;
        self.active_slots += metrics.active_slots as u64;
        word = mix(word ^ metrics.final_height as u64);
        word = mix(word ^ metrics.rollback_count as u64);
        word = mix(word ^ metrics.max_slot_divergence as u64);
        word = mix(word ^ lag as u64);
        // Wrapping sum: commutative, so claim order cannot matter.
        self.fingerprint = self.fingerprint.wrapping_add(word);
    }

    /// Merges another aggregate of the same shape in (chunk → cell).
    ///
    /// # Panics
    ///
    /// Panics if the two aggregates track different `k` counts.
    pub fn merge(&mut self, other: &CellAggregate) {
        assert_eq!(
            self.violating_executions.len(),
            other.violating_executions.len(),
            "aggregates track different settlement parameter sets"
        );
        self.trials += other.trials;
        for (a, b) in self
            .violating_executions
            .iter_mut()
            .zip(&other.violating_executions)
        {
            *a += b;
        }
        for (a, b) in self
            .violating_anchors
            .iter_mut()
            .zip(&other.violating_anchors)
        {
            *a += b;
        }
        self.rollbacks += other.rollbacks;
        self.max_slot_divergence = self.max_slot_divergence.max(other.max_slot_divergence);
        self.max_settlement_lag = self.max_settlement_lag.max(other.max_settlement_lag);
        self.chain_blocks += other.chain_blocks;
        self.honest_chain_blocks += other.honest_chain_blocks;
        self.final_height += other.final_height;
        self.active_slots += other.active_slots;
        self.deferred_deliveries += other.deferred_deliveries;
        self.dropped_deliveries += other.dropped_deliveries;
        self.worst_effective_delta = self.worst_effective_delta.max(other.worst_effective_delta);
        self.fingerprint = self.fingerprint.wrapping_add(other.fingerprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_scenario::{ColumnarSchedule, ColumnarSimulation};
    use multihonest_sim::{SimConfig, Strategy, TieBreak};

    fn trial(seed: u64) -> (Metrics, DivergenceIndex) {
        let config = SimConfig {
            honest_nodes: 5,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.3,
            delta: 2,
            slots: 150,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::PrivateWithholding,
        };
        let schedule = ColumnarSchedule::sample(5, 0.3, 0.3, 150, seed);
        let mut s = config.strategy.instantiate();
        ColumnarSimulation::run_streaming(&config, &schedule, s.as_mut(), &mut ())
    }

    #[test]
    fn merge_is_commutative_and_matches_sequential_fold() {
        let ks = [4usize, 16];
        let mut all = CellAggregate::new(2);
        let mut left = CellAggregate::new(2);
        let mut right = CellAggregate::new(2);
        for seed in 0..12u64 {
            let (m, idx) = trial(seed);
            all.record(seed, &m, &idx, &ks, 150);
            let half = if seed % 2 == 0 { &mut left } else { &mut right };
            half.record(seed, &m, &idx, &ks, 150);
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, all, "split fold must equal the sequential fold");
        assert_eq!(rl, all, "merge order must not matter");
    }

    #[test]
    fn fingerprint_is_sensitive_to_any_trial() {
        let ks = [16usize];
        let mut a = CellAggregate::new(1);
        let mut b = CellAggregate::new(1);
        for seed in 0..4u64 {
            let (m, idx) = trial(seed);
            a.record(seed, &m, &idx, &ks, 150);
            // b records the same trials but mislabels one seed.
            b.record(if seed == 2 { 99 } else { seed }, &m, &idx, &ks, 150);
        }
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(a.trials, b.trials);
    }

    #[test]
    #[should_panic(expected = "different settlement parameter sets")]
    fn shape_mismatch_rejected() {
        let mut a = CellAggregate::new(2);
        a.merge(&CellAggregate::new(3));
    }
}
