//! # multihonest-sweep
//!
//! The campaign sweep orchestrator: **10⁵–10⁷ deterministic seeded
//! executions** of the columnar scenario engine over a
//! (strategy × Δ × stake-profile × fault-profile × k) grid, with work
//! stealing, bounded memory, and checkpointed resume.
//!
//! The paper's headline claims (Theorem 1 / Corollary 1
//! settlement-failure bounds under concurrent honest slot leaders) are
//! empirically testable only as violation *tails* — frequencies small
//! enough that single executions say nothing and campaigns of millions
//! of seeds are the unit of work. Single executions are cheap
//! (`multihonest_scenario`, ~6 Mslots/s); this crate makes the campaign
//! the first-class object:
//!
//! * [`CampaignSpec`] — the grid, the shared protocol parameters, and
//!   the **seed-sharding** root: trial `j` of cell `i` runs with seed
//!   `mix(mix(root ^ mix(i)) ^ j)`, a pure function of the coordinates.
//!   Work partitioning (threads, chunk claim order, interruptions)
//!   cannot touch any execution's randomness.
//! * [`run_campaign`] — a work-stealing executor over
//!   `std::thread::scope`: per-worker chunk claiming off one atomic
//!   counter, one reused [`ExecutionArena`] + schedule per worker, every
//!   execution streamed (no retained traces). Memory is bounded by
//!   `O(threads + cells)`, not the trial count.
//! * [`Checkpoint`] — completed-cell aggregates flushed atomically to
//!   JSON; an interrupted campaign resumes **byte-identically** (the
//!   resume tests compare final report bytes across interrupt points and
//!   thread counts).
//! * [`campaign_report`] — JSON + CSV with per-cell violation
//!   frequencies, 95% Wilson intervals, and two theory columns: the
//!   Theorem 7 closed-form bound (`multihonest_analytic`) and the exact
//!   margin DP on the Δ-reduced condition (`multihonest_margin`). For
//!   faulty cells the theory columns are evaluated at the plan's static
//!   Δ′ bound, and the degradation ledger (deferred / dropped / worst
//!   effective Δ) is carried per cell.
//! * [`check_conservatism`] — the Δ′-conservatism validation harness:
//!   for every bounded fault plan, the empirical settlement-violation
//!   frequency must stay under the Δ′-model prediction.
//!
//! Everything aggregated during a run is an integer (sums, maxes,
//! order-invariant fingerprints); every float in the report is derived
//! from those integers at render time. That is what makes "same spec ⇒
//! same bytes" hold across any execution history.
//!
//! [`ExecutionArena`]: multihonest_scenario::ExecutionArena

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod checkpoint;
pub mod conservatism;
pub mod report;
pub mod run;
pub mod spec;

pub use crate::aggregate::CellAggregate;
pub use crate::checkpoint::{Checkpoint, CompletedCell, CHECKPOINT_SCHEMA};
pub use crate::conservatism::{check_conservatism, ConservatismEstimate, ScenarioConservatism};
pub use crate::report::{
    campaign_report, leadership_condition, report_csv, report_json, CampaignReport, CellReport,
    SettlementEstimate, REPORT_SCHEMA,
};
pub use crate::run::{run_campaign, run_campaign_observed, CampaignOutcome, RunOptions};
pub use crate::spec::{CampaignSpec, CellSpec, FaultProfile, StakeProfile, SweepStrategy};
