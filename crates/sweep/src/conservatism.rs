//! The Δ-conservatism validation harness.
//!
//! The fault layer's core guarantee is **deferral, not loss**: every
//! honest delivery of a bounded fault plan arrives within
//! `Δ′ = Δ + worst_case_extra_delay` slots of its broadcast
//! ([`FaultPlan::worst_case_delta`]). A faulty Δ-synchronous execution
//! is therefore *also* a fault-free Δ′-synchronous execution, and the
//! paper's Δ′-model must bound it: the empirical per-anchor
//! settlement-violation frequency of a faulty campaign may not exceed
//! the Δ′-reduced model's per-anchor violation probability — neither
//! the **exact** margin DP value ([`ExactSettlement`], the optimal
//! rushing adversary in the Δ′ model) nor the looser closed-form
//! **Theorem 7** tail bound.
//!
//! [`check_conservatism`] runs one [`FaultScenario`] for a batch of
//! seeded trials, measures the violation tail and the degradation
//! ledger, evaluates both Δ′-model predictions, and reports per-`k`
//! verdicts. Scenarios with unbounded plans (a never-recovering crash)
//! have no Δ′ and get no verdict — the model makes no claim there.
//!
//! [`FaultPlan::worst_case_delta`]: multihonest_sim::FaultPlan::worst_case_delta

use multihonest_analytic::theorem7_bound;
use multihonest_margin::ExactSettlement;
use multihonest_scenario::{ColumnarSimulation, ExecutionArena, FaultScenario};
use serde::Serialize;

use crate::report::leadership_condition;
use crate::spec::mix;

/// The per-`k` verdict of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConservatismEstimate {
    /// Settlement parameter.
    pub k: u64,
    /// Executions with ≥ 1 violating anchor.
    pub violating_executions: u64,
    /// Total violating anchor slots over all executions.
    pub violating_anchors: u64,
    /// Empirical per-anchor violation frequency:
    /// `violating_anchors / (trials × slots)`.
    pub per_anchor_frequency: f64,
    /// Exact margin-DP per-anchor violation probability in the Δ′ model
    /// (`None` when Δ′ is unbounded or inadmissible).
    pub exact_reduced: Option<f64>,
    /// Theorem 7 closed-form per-anchor tail bound at Δ′.
    pub theorem7_bound: Option<f64>,
    /// Whether every available Δ′-model prediction bounds the empirical
    /// frequency; `None` when no prediction is available.
    pub conservative: Option<bool>,
}

/// The conservatism verdict of one [`FaultScenario`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioConservatism {
    /// [`FaultScenario::name`].
    ///
    /// [`FaultScenario::name`]: multihonest_scenario::FaultScenario
    pub scenario: String,
    /// The scenario's base network delay bound Δ.
    pub delta: u64,
    /// The plan's static Δ′ bound (`None` = unbounded plan).
    pub delta_prime: Option<u64>,
    /// Worst observed effective Δ over all trials — must stay ≤ Δ′.
    pub observed_effective_delta: u64,
    /// Fault-deferred delivery events over all trials.
    pub deferred: u64,
    /// Deliveries dropped at the horizon over all trials (non-zero only
    /// for unbounded plans).
    pub dropped: u64,
    /// Seeded trials run.
    pub trials: u64,
    /// Per-`k` verdicts, aligned with the requested `ks`.
    pub rows: Vec<ConservatismEstimate>,
    /// The scenario verdict: `Some(false)` if any row's prediction was
    /// exceeded **or** the observed effective Δ escaped the static Δ′
    /// bound, `None` if no row had a prediction, `Some(true)` otherwise.
    pub conservative: Option<bool>,
}

/// Runs `trials` seeded executions of `scenario` and checks the
/// Δ′-model's conservatism (module docs). Deterministic in
/// `(scenario, trials, ks, seed)`.
pub fn check_conservatism(
    scenario: &FaultScenario,
    trials: u64,
    ks: &[usize],
    seed: u64,
) -> ScenarioConservatism {
    let config = &scenario.config;
    let slots = config.slots;
    let mut arena = ExecutionArena::new();
    let mut violating_executions = vec![0u64; ks.len()];
    let mut violating_anchors = vec![0u64; ks.len()];
    let mut observed_effective_delta = 0usize;
    let mut deferred = 0u64;
    let mut dropped = 0u64;
    for trial in 0..trials {
        let trial_seed = mix(mix(seed ^ mix(trial)) ^ 0xFA_0715);
        let schedule = scenario.schedule(trial_seed);
        let mut strategy = config.strategy.instantiate();
        let (_, index, ledger) = ColumnarSimulation::run_streaming_faults_in(
            &mut arena,
            config,
            &schedule,
            strategy.as_mut(),
            &scenario.plan,
            &mut (),
        );
        for (i, &k) in ks.iter().enumerate() {
            let anchors = index.count_violations(k, slots) as u64;
            violating_anchors[i] += anchors;
            violating_executions[i] += u64::from(anchors > 0);
        }
        observed_effective_delta = observed_effective_delta.max(ledger.worst_effective_delta);
        deferred += ledger.deferred;
        dropped += ledger.dropped;
    }

    let delta_prime = scenario.worst_case_delta();
    let stakes =
        vec![(1.0 - config.adversarial_stake) / config.honest_nodes as f64; config.honest_nodes];
    let condition =
        leadership_condition(config.active_slot_coeff, config.adversarial_stake, &stakes);
    let exact_probs: Option<Vec<f64>> = condition
        .as_ref()
        .ok()
        .zip(delta_prime)
        .and_then(|(c, dp)| c.reduced_condition(dp).ok())
        .map(|reduced| ExactSettlement::new(reduced).violation_probabilities(ks));
    let anchors_total = (trials * slots as u64).max(1) as f64;
    let rows: Vec<ConservatismEstimate> = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let per_anchor_frequency = violating_anchors[i] as f64 / anchors_total;
            let exact_reduced = exact_probs.as_ref().map(|p| p[i]);
            let t7 = condition
                .as_ref()
                .ok()
                .zip(delta_prime)
                .and_then(|(c, dp)| theorem7_bound(c, dp, k).ok());
            let bounds: Vec<f64> = exact_reduced.iter().chain(t7.iter()).copied().collect();
            let conservative = (!bounds.is_empty())
                .then(|| bounds.iter().all(|&b| per_anchor_frequency <= b + 1e-12));
            ConservatismEstimate {
                k: k as u64,
                violating_executions: violating_executions[i],
                violating_anchors: violating_anchors[i],
                per_anchor_frequency,
                exact_reduced,
                theorem7_bound: t7,
                conservative,
            }
        })
        .collect();
    let verdicts: Vec<bool> = rows.iter().filter_map(|r| r.conservative).collect();
    let within_bound = delta_prime.is_none_or(|dp| observed_effective_delta <= dp);
    let conservative = (!verdicts.is_empty()).then(|| within_bound && verdicts.iter().all(|&v| v));
    ScenarioConservatism {
        scenario: scenario.name.to_string(),
        delta: config.delta as u64,
        delta_prime: delta_prime.map(|d| d as u64),
        observed_effective_delta: observed_effective_delta as u64,
        deferred,
        dropped,
        trials,
        rows,
        conservative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_scenario::fault_library;

    #[test]
    fn fault_library_is_conservative_under_the_delta_prime_model() {
        for sc in fault_library(400) {
            let verdict = check_conservatism(&sc, 12, &[8, 24], 0xC0FFEE);
            assert_eq!(verdict.trials, 12, "{}", sc.name);
            assert_eq!(
                verdict.dropped, 0,
                "{}: bounded plans drop nothing",
                sc.name
            );
            let dp = verdict.delta_prime.expect("library plans are bounded");
            assert!(
                verdict.observed_effective_delta <= dp,
                "{}: observed {} > Δ′ {dp}",
                sc.name,
                verdict.observed_effective_delta
            );
            assert_eq!(
                verdict.conservative,
                Some(true),
                "{}: Δ′-model prediction exceeded: {:?}",
                sc.name,
                verdict.rows
            );
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let lib = fault_library(400);
        let a = check_conservatism(&lib[0], 6, &[8], 7);
        let b = check_conservatism(&lib[0], 6, &[8], 7);
        assert_eq!(a, b);
    }

    #[test]
    fn unbounded_plans_get_no_verdict() {
        use multihonest_sim::{FaultDirective, FaultPlan};
        let mut sc = fault_library(400).remove(0);
        sc.plan = FaultPlan::new().with(FaultDirective::Crash {
            node: 0,
            at: 10,
            recover_slot: usize::MAX,
        });
        let verdict = check_conservatism(&sc, 4, &[8], 3);
        assert_eq!(verdict.delta_prime, None);
        assert_eq!(verdict.conservative, None);
        for row in &verdict.rows {
            assert_eq!(row.exact_reduced, None);
            assert_eq!(row.conservative, None);
        }
        assert!(verdict.dropped > 0, "never-recovering crash drops");
    }
}
