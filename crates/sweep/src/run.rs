//! The work-stealing campaign executor.
//!
//! The campaign is flattened into `(cell, trial-chunk)` work units; a
//! scoped worker per thread claims units off a single atomic counter —
//! the same stealing discipline as `CanonicalMonteCarlo`, so a fast
//! worker drains what a slow one never claims and the partition of work
//! onto threads is load-driven. Results cannot depend on that partition:
//! every trial's seed is a pure function of `(root, cell, trial)` and
//! every per-cell fold is commutative ([`CellAggregate`]), so 1, 4 and 8
//! threads produce bit-identical aggregates.
//!
//! Each worker owns one [`BatchExecution`] (arena + schedule buffer) and
//! drives a whole trial chunk through it at once: the `φ(stake)` table
//! is built once per chunk ([`LeaderProbs`]), the schedule is resampled
//! in place per seed, and every execution streams through the reused
//! arena. Memory stays bounded by `O(threads · arena + cells ·
//! aggregate)` — independent of the trial count — and by the batch law
//! (see `multihonest_scenario::batch`) the aggregates are identical to
//! one-trial-at-a-time execution.
//!
//! When a checkpoint path is set, the worker that lands a cell's **last**
//! chunk flushes a [`Checkpoint`] of all completed cells (atomic
//! temp-file + rename, serialized by a flush lock). An interrupted
//! campaign therefore loses at most the cells in flight; resuming
//! validates the spec fingerprint, pre-fills the completed cells, and
//! recomputes only the remainder — byte-identical to an uninterrupted
//! run.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use multihonest_obs::{Heartbeat, ObsRecorder};
use multihonest_scenario::{BatchExecution, LeaderProbs};

use crate::aggregate::CellAggregate;
use crate::checkpoint::{Checkpoint, CompletedCell};
use crate::spec::{CampaignSpec, CellSpec};

/// Trials per work unit: small enough to load-balance a 24-cell grid
/// over 8 workers, large enough that claiming is noise.
const CHUNK: u64 = 64;

/// Execution options of a campaign run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads (0 or 1 = single-threaded).
    pub threads: usize,
    /// Checkpoint file to resume from and flush completed cells to.
    pub checkpoint: Option<PathBuf>,
    /// Stop claiming new work once this many cells completed **in this
    /// run** (resumed cells don't count) — the interrupt injection used
    /// by the resume tests and the CI interrupt/resume smoke.
    pub stop_after_cells: Option<usize>,
}

/// The outcome of [`run_campaign`].
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-cell aggregates; `None` for cells not completed (only under
    /// [`RunOptions::stop_after_cells`] or a checkpoint write failure).
    pub aggregates: Vec<Option<CellAggregate>>,
    /// Cells complete at the end of this run (including resumed ones).
    pub completed_cells: usize,
    /// Cells pre-filled from the checkpoint.
    pub resumed_cells: usize,
    /// Executions actually run (excludes resumed cells' trials).
    pub executions_run: u64,
}

impl CampaignOutcome {
    /// Whether every cell of the grid is complete.
    pub fn is_complete(&self) -> bool {
        self.completed_cells == self.aggregates.len()
    }
}

/// Per-cell shared state of one run.
struct CellSlot {
    agg: Mutex<CellAggregate>,
    /// Chunks still outstanding; 0 = cell complete.
    remaining: AtomicU64,
}

/// Runs (or resumes) a campaign. See the module docs for the
/// determinism and checkpoint contracts.
///
/// # Errors
///
/// Fails when the checkpoint file exists but is malformed, belongs to a
/// different spec, or cannot be written.
pub fn run_campaign(spec: &CampaignSpec, opts: &RunOptions) -> io::Result<CampaignOutcome> {
    run_campaign_observed(spec, opts, None, None)
}

/// [`run_campaign`] with observability attached: each worker records
/// into an [`ObsRecorder`] shard (shared epoch, per-worker `tid`) —
/// per-unit `sweep.unit` spans, a `sweep.queue_depth` gauge, a
/// `sweep.checkpoint_write_us` histogram — and the shards merge into
/// `obs` when the run finishes. `heartbeat` gates a periodic stderr
/// progress line (cells done, executions, slots-per-second, ETA).
///
/// Recording is observation-only: aggregates, checkpoints and outcome
/// counters are bit-identical to [`run_campaign`]'s (which delegates
/// here with both hooks disabled).
pub fn run_campaign_observed(
    spec: &CampaignSpec,
    opts: &RunOptions,
    obs: Option<&mut ObsRecorder>,
    heartbeat: Option<&mut Heartbeat>,
) -> io::Result<CampaignOutcome> {
    let cells = spec.cells();
    let num_ks = spec.ks.len();
    let fingerprint = spec.fingerprint();

    // Resume: pre-fill completed cells from the checkpoint, if any.
    let mut prefilled: Vec<Option<CellAggregate>> = vec![None; cells.len()];
    let mut resumed_cells = 0usize;
    if let Some(path) = &opts.checkpoint {
        if let Some(checkpoint) = Checkpoint::load(path, fingerprint)? {
            for done in checkpoint.completed {
                let i = done.cell as usize;
                if i >= cells.len()
                    || done.aggregate.trials != spec.trials_per_cell
                    || done.aggregate.violating_executions.len() != num_ks
                {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("checkpoint cell {i} does not fit the campaign grid"),
                    ));
                }
                resumed_cells += usize::from(prefilled[i].is_none());
                prefilled[i] = Some(done.aggregate);
            }
        }
    }

    // Work units over the incomplete cells.
    let chunks_of = |trials: u64| trials.div_ceil(CHUNK);
    let slots: Vec<CellSlot> = prefilled
        .iter()
        .map(|pre| match pre {
            Some(agg) => CellSlot {
                agg: Mutex::new(agg.clone()),
                remaining: AtomicU64::new(0),
            },
            None => CellSlot {
                agg: Mutex::new(CellAggregate::new(num_ks)),
                remaining: AtomicU64::new(chunks_of(spec.trials_per_cell)),
            },
        })
        .collect();
    let mut units: Vec<(usize, u64, u64)> = Vec::new();
    for (i, pre) in prefilled.iter().enumerate() {
        if pre.is_none() {
            let mut start = 0;
            while start < spec.trials_per_cell {
                let end = (start + CHUNK).min(spec.trials_per_cell);
                units.push((i, start, end));
                start = end;
            }
        }
    }

    let next_unit = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let completed_this_run = AtomicUsize::new(0);
    let executions_run = AtomicU64::new(0);
    let flush_lock = Mutex::new(());
    let flush_error: Mutex<Option<io::Error>> = Mutex::new(None);

    // Observability plumbing: workers record into per-thread shards
    // (same epoch, distinct tids) collected here and merged at the end;
    // the heartbeat is shared behind a try_lock so contention never
    // blocks a worker.
    let total_units = units.len();
    let total_execs: u64 = units.iter().map(|&(_, s, e)| e - s).sum();
    let shard_proto: Option<ObsRecorder> = obs.as_ref().map(|o| o.shard(0));
    let shards: Mutex<Vec<ObsRecorder>> = Mutex::new(Vec::new());
    let hb: Option<Mutex<&mut Heartbeat>> = heartbeat.map(Mutex::new);
    let worker_id = AtomicUsize::new(0);

    let worker = || {
        let tid = worker_id.fetch_add(1, Ordering::Relaxed);
        let mut rec = shard_proto.as_ref().map(|p| p.shard(tid as u32 + 1));
        let mut batch = BatchExecution::new();
        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            let u = next_unit.fetch_add(1, Ordering::Relaxed);
            let Some(&(cell_index, start, end)) = units.get(u) else {
                break;
            };
            if let Some(r) = rec.as_mut() {
                use multihonest_obs::Recorder as _;
                r.gauge(
                    "sweep.queue_depth",
                    total_units.saturating_sub(u + 1) as i64,
                );
                r.span_begin("sweep.unit");
            }
            let cell: &CellSpec = &cells[cell_index];
            let config = spec.config_for(cell);
            let stakes = spec.stakes_for(cell);
            let plan = cell.fault.plan(spec.honest_nodes, spec.slots);
            let probs =
                LeaderProbs::weighted(&stakes, spec.adversarial_stake, spec.active_slot_coeff);
            let mut chunk = CellAggregate::new(num_ks);
            batch.run(
                &config,
                &probs,
                &plan,
                (start..end).map(|trial| spec.trial_seed(cell_index, trial)),
                |_| cell.strategy.instantiate(),
                |out| {
                    chunk.record(
                        out.seed,
                        &out.metrics,
                        &out.divergence,
                        &spec.ks,
                        spec.slots,
                    );
                    chunk.record_faults(&out.ledger);
                },
            );
            executions_run.fetch_add(end - start, Ordering::Relaxed);
            if let Some(r) = rec.as_mut() {
                use multihonest_obs::Recorder as _;
                r.span_end("sweep.unit");
                r.counter("sweep.executions", end - start);
            }
            if let Some(hb) = hb.as_ref() {
                if let Ok(mut h) = hb.try_lock() {
                    if let Some(elapsed) = h.due() {
                        let execs = executions_run.load(Ordering::Relaxed);
                        let cells_done = resumed_cells + completed_this_run.load(Ordering::Relaxed);
                        let slot_rate = execs as f64 * spec.slots as f64 / elapsed;
                        let eta = if execs > 0 {
                            (total_execs.saturating_sub(execs)) as f64 * elapsed / execs as f64
                        } else {
                            0.0
                        };
                        eprintln!(
                            "heartbeat[sweep]: cells {cells_done}/{}, {execs}/{total_execs} exec, \
                             {:.2} Mslots/s, ETA {eta:.0}s",
                            cells.len(),
                            slot_rate / 1e6
                        );
                    }
                }
            }
            slots[cell_index]
                .agg
                .lock()
                .expect("poisoned")
                .merge(&chunk);
            let left = slots[cell_index].remaining.fetch_sub(1, Ordering::AcqRel) - 1;
            if left > 0 {
                continue;
            }
            // This worker landed the cell's last chunk: count it and
            // flush the completed prefix.
            let finished = completed_this_run.fetch_add(1, Ordering::AcqRel) + 1;
            if opts.stop_after_cells.is_some_and(|limit| finished >= limit) {
                stop.store(true, Ordering::Release);
            }
            if let Some(path) = &opts.checkpoint {
                let _serialize_writes = flush_lock.lock().expect("poisoned");
                let write_start = rec.is_some().then(Instant::now);
                let mut snapshot = Checkpoint::empty(fingerprint);
                snapshot.completed = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.remaining.load(Ordering::Acquire) == 0)
                    .map(|(i, s)| CompletedCell {
                        cell: i as u64,
                        aggregate: s.agg.lock().expect("poisoned").clone(),
                    })
                    .collect();
                let written = snapshot.write(path);
                if let (Some(r), Some(t0)) = (rec.as_mut(), write_start) {
                    use multihonest_obs::Recorder as _;
                    r.observe("sweep.checkpoint_write_us", t0.elapsed().as_micros() as u64);
                }
                if let Err(e) = written {
                    *flush_error.lock().expect("poisoned") = Some(e);
                    stop.store(true, Ordering::Release);
                }
            }
        }
        if let Some(r) = rec {
            shards.lock().expect("poisoned").push(r);
        }
    };

    let threads = opts.threads.max(1);
    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }

    if let Some(o) = obs {
        let mut collected = shards.into_inner().expect("poisoned");
        // Merge in tid order so the combined timeline is deterministic
        // for a given work partition.
        collected.sort_by_key(|s| s.tid());
        for shard in collected {
            o.merge(shard);
        }
    }

    if let Some(e) = flush_error.lock().expect("poisoned").take() {
        return Err(e);
    }

    let aggregates: Vec<Option<CellAggregate>> = slots
        .into_iter()
        .map(|s| {
            (s.remaining.load(Ordering::Acquire) == 0)
                .then(|| s.agg.into_inner().expect("poisoned"))
        })
        .collect();
    let completed_cells = aggregates.iter().flatten().count();
    Ok(CampaignOutcome {
        aggregates,
        completed_cells,
        resumed_cells,
        executions_run: executions_run.into_inner(),
    })
}
