//! Campaign grid specifications with deterministic seed sharding.
//!
//! A [`CampaignSpec`] names a full (strategy × Δ × stake-profile) grid,
//! a per-cell trial count, and a root seed. The per-trial seed of trial
//! `j` in cell `i` is the **pure function** [`CampaignSpec::trial_seed`]
//! of `(root, i, j)` — never of which worker ran it, how many threads
//! exist, or what order chunks were claimed in. That is the same design
//! that makes `CanonicalMonteCarlo` thread-count-invariant: the work
//! partition can change freely while every execution's randomness stays
//! pinned, so campaign aggregates (all commutative integer folds) come
//! out identical for 1, 4 or 8 workers and across interrupt/resume.

use multihonest_scenario::{LaggedWithholding, NetworkSchedule, NodeProfile};
use multihonest_sim::strategy::AdversaryStrategy;
use multihonest_sim::{FaultDirective, FaultPlan, SimConfig, Strategy, TieBreak};

/// SplitMix64 finalizer — the workspace's standard stateless mixer.
#[inline]
pub(crate) fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An adversary axis value of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepStrategy {
    /// The honest baseline ([`Strategy::Honest`]).
    Honest,
    /// The generalized withholding attack with the given release lag
    /// (`lag = 0` is exactly [`Strategy::PrivateWithholding`]).
    Withholding {
        /// Slots between the release decision and delivery.
        release_lag: usize,
    },
    /// The multi-leader balance attack ([`Strategy::BalanceAttack`]).
    Balance,
}

impl SweepStrategy {
    /// A stable display/serialization name (also part of the spec
    /// fingerprint, so renaming invalidates old checkpoints by design).
    pub fn name(&self) -> String {
        match *self {
            SweepStrategy::Honest => "honest".to_string(),
            SweepStrategy::Withholding { release_lag } => format!("withhold-lag{release_lag}"),
            SweepStrategy::Balance => "balance".to_string(),
        }
    }

    /// A fresh strategy object for one execution.
    pub fn instantiate(&self) -> Box<dyn AdversaryStrategy> {
        match *self {
            SweepStrategy::Honest => Strategy::Honest.instantiate(),
            SweepStrategy::Withholding { release_lag } => Box::new(LaggedWithholding::new(
                release_lag,
                NetworkSchedule::EdgeOfWindow,
                NodeProfile::uniform(),
            )),
            SweepStrategy::Balance => Strategy::BalanceAttack.instantiate(),
        }
    }

    /// The nearest built-in [`Strategy`] (stored in the cell's
    /// [`SimConfig`] for display; execution drives [`instantiate`]).
    ///
    /// [`instantiate`]: SweepStrategy::instantiate
    pub fn nearest_builtin(&self) -> Strategy {
        match *self {
            SweepStrategy::Honest => Strategy::Honest,
            SweepStrategy::Withholding { .. } => Strategy::PrivateWithholding,
            SweepStrategy::Balance => Strategy::BalanceAttack,
        }
    }
}

/// A stake-distribution axis value of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StakeProfile {
    /// Honest stake split equally.
    Uniform,
    /// Zipf-skewed honest stake (node `i` weighs `1 / (i + 1)`).
    Zipf,
}

impl StakeProfile {
    /// A stable display/serialization name.
    pub fn name(&self) -> &'static str {
        match self {
            StakeProfile::Uniform => "uniform",
            StakeProfile::Zipf => "zipf",
        }
    }

    /// The absolute honest stake shares under this profile.
    pub fn stakes(&self, nodes: usize, adversarial_stake: f64) -> Vec<f64> {
        match self {
            StakeProfile::Uniform => NodeProfile::uniform().stakes(nodes, adversarial_stake),
            StakeProfile::Zipf => NodeProfile::zipf(nodes).stakes(nodes, adversarial_stake),
        }
    }
}

/// A fault-injection axis value of the campaign grid: a named recipe
/// compiled per cell into a concrete [`FaultPlan`] by
/// [`FaultProfile::plan`]. Window positions scale with the campaign's
/// horizon; window *lengths* stay short and fixed, so each profile's
/// static Δ′ bound ([`FaultPlan::worst_case_delta`]) is
/// horizon-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No injected faults — the empty plan, which the engines execute
    /// bit-identically to the fault-free path.
    None,
    /// The honest nodes split into two halves for 4 slots around the
    /// first quarter of the horizon.
    PartitionHalves,
    /// The middle node is eclipsed for 5 slots around mid-horizon.
    Eclipse,
    /// Node 1 crashes for 6 slots around the first third of the horizon
    /// and resyncs on recovery.
    CrashRecover,
    /// Windowed seeded message loss at `ppm / 10⁶` drop probability for
    /// 5 slots around the first fifth of the horizon.
    Loss {
        /// Drop probability in parts per million.
        ppm: u32,
    },
}

impl FaultProfile {
    /// A stable display/serialization name (part of the spec
    /// fingerprint, so renaming invalidates old checkpoints by design).
    pub fn name(&self) -> String {
        match *self {
            FaultProfile::None => "none".to_string(),
            FaultProfile::PartitionHalves => "partition-halves".to_string(),
            FaultProfile::Eclipse => "eclipse".to_string(),
            FaultProfile::CrashRecover => "crash-recover".to_string(),
            FaultProfile::Loss { ppm } => format!("loss-{ppm}ppm"),
        }
    }

    /// The concrete plan of this profile for a cell with `honest_nodes`
    /// nodes over `slots` slots.
    pub fn plan(&self, honest_nodes: usize, slots: usize) -> FaultPlan {
        match *self {
            FaultProfile::None => FaultPlan::new(),
            FaultProfile::PartitionHalves => {
                let start = (slots / 4).max(1);
                FaultPlan::new().with(FaultDirective::Partition {
                    groups: vec![
                        (0..honest_nodes / 2).collect(),
                        (honest_nodes / 2..honest_nodes).collect(),
                    ],
                    start,
                    heal_slot: start + 4,
                })
            }
            FaultProfile::Eclipse => {
                let start = (slots / 2).max(1);
                FaultPlan::new().with(FaultDirective::Eclipse {
                    node: honest_nodes / 2,
                    start,
                    until: start + 5,
                })
            }
            FaultProfile::CrashRecover => {
                let start = (slots / 3).max(1);
                FaultPlan::new().with(FaultDirective::Crash {
                    node: 1 % honest_nodes,
                    at: start,
                    recover_slot: start + 6,
                })
            }
            FaultProfile::Loss { ppm } => {
                let start = (slots / 5).max(1);
                FaultPlan::new().with(FaultDirective::MessageLoss {
                    p: f64::from(ppm) / 1e6,
                    salt: 0x10_55,
                    start,
                    until: start + 5,
                })
            }
        }
    }
}

/// One cell of the flattened grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Row-major cell index (strategy-major, fault-minor).
    pub index: usize,
    /// The adversary strategy of this cell.
    pub strategy: SweepStrategy,
    /// The network delay bound Δ of this cell.
    pub delta: usize,
    /// The honest stake distribution of this cell.
    pub profile: StakeProfile,
    /// The fault-injection profile of this cell.
    pub fault: FaultProfile,
}

/// A full campaign: the grid axes, the shared protocol parameters, and
/// the seed-sharding root. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Strategy axis (outermost in cell order).
    pub strategies: Vec<SweepStrategy>,
    /// Δ axis.
    pub deltas: Vec<usize>,
    /// Stake-profile axis.
    pub profiles: Vec<StakeProfile>,
    /// Fault-injection axis (innermost in cell order; `[None]` keeps
    /// every cell's index and trial seeds identical to a fault-free
    /// campaign).
    pub faults: Vec<FaultProfile>,
    /// Honest node count (every cell).
    pub honest_nodes: usize,
    /// Adversarial relative stake in `[0, 1)`.
    pub adversarial_stake: f64,
    /// Active-slot coefficient `f ∈ (0, 1)`.
    pub active_slot_coeff: f64,
    /// Honest tie-breaking rule.
    pub tie_break: TieBreak,
    /// Slots per execution.
    pub slots: usize,
    /// Seeded executions per cell.
    pub trials_per_cell: u64,
    /// Settlement parameters `k` to estimate violation tails for.
    pub ks: Vec<usize>,
    /// Root seed of the seed-sharding scheme.
    pub seed: u64,
}

impl CampaignSpec {
    /// The default 24-cell campaign grid: {honest, withhold-lag0,
    /// withhold-lag8, balance} × Δ ∈ {0, 2, 4} × {uniform, zipf}, at the
    /// workspace's standard 10-node / 0.3-adversary / f = 0.25 setting.
    /// With the default `trials_per_cell` the campaign totals just over
    /// 10⁵ executions.
    pub fn default_grid() -> CampaignSpec {
        CampaignSpec {
            strategies: vec![
                SweepStrategy::Honest,
                SweepStrategy::Withholding { release_lag: 0 },
                SweepStrategy::Withholding { release_lag: 8 },
                SweepStrategy::Balance,
            ],
            deltas: vec![0, 2, 4],
            profiles: vec![StakeProfile::Uniform, StakeProfile::Zipf],
            faults: vec![FaultProfile::None],
            honest_nodes: 10,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.25,
            tie_break: TieBreak::AdversarialOrder,
            slots: 1_000,
            trials_per_cell: 4_200,
            ks: vec![8, 16, 32, 64],
            seed: 20_200_712, // ICDCS 2020 virtual-conference week
        }
    }

    /// The reduced CI smoke grid: the same 24 cells at 300 slots and a
    /// few dozen trials, finishing in seconds.
    pub fn quick_grid() -> CampaignSpec {
        CampaignSpec {
            slots: 300,
            trials_per_cell: 40,
            ks: vec![8, 16, 32],
            ..CampaignSpec::default_grid()
        }
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.strategies.len() * self.deltas.len() * self.profiles.len() * self.faults.len()
    }

    /// Total executions the campaign runs.
    pub fn executions(&self) -> u64 {
        self.cell_count() as u64 * self.trials_per_cell
    }

    /// The flattened grid, row-major: strategies outermost, then Δ,
    /// then stake profiles, then fault profiles (innermost — a
    /// single-`None` fault axis reproduces the fault-free cell order).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.cell_count());
        for &strategy in &self.strategies {
            for &delta in &self.deltas {
                for &profile in &self.profiles {
                    for &fault in &self.faults {
                        out.push(CellSpec {
                            index: out.len(),
                            strategy,
                            delta,
                            profile,
                            fault,
                        });
                    }
                }
            }
        }
        out
    }

    /// The simulator configuration of `cell` (the embedded `strategy`
    /// field is display-only: execution instantiates
    /// [`SweepStrategy::instantiate`] directly).
    pub fn config_for(&self, cell: &CellSpec) -> SimConfig {
        SimConfig {
            honest_nodes: self.honest_nodes,
            adversarial_stake: self.adversarial_stake,
            active_slot_coeff: self.active_slot_coeff,
            delta: cell.delta,
            slots: self.slots,
            tie_break: self.tie_break,
            strategy: cell.strategy.nearest_builtin(),
        }
    }

    /// The honest stake shares of `cell`.
    pub fn stakes_for(&self, cell: &CellSpec) -> Vec<f64> {
        cell.profile
            .stakes(self.honest_nodes, self.adversarial_stake)
    }

    /// The seed of trial `trial` in cell `cell` — a pure function of
    /// `(root seed, cell, trial)`, independent of workers, thread counts
    /// and claim order. Two mixing rounds decorrelate the lattice: a
    /// single SplitMix64 of `root + cell·C₁ + trial·C₂` would leave
    /// collinear inputs for adjacent `(cell, trial)` pairs.
    pub fn trial_seed(&self, cell: usize, trial: u64) -> u64 {
        mix(mix(self.seed ^ mix(cell as u64)) ^ trial)
    }

    /// A 64-bit fingerprint of every field that affects execution
    /// results. Checkpoints embed it; resuming under a different spec is
    /// rejected instead of silently merging incompatible aggregates.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0u64;
        let mut fold = |v: u64| h = mix(h ^ v);
        fold(self.seed);
        fold(self.honest_nodes as u64);
        fold(self.adversarial_stake.to_bits());
        fold(self.active_slot_coeff.to_bits());
        fold(match self.tie_break {
            TieBreak::AdversarialOrder => 0,
            TieBreak::Consistent => 1,
        });
        fold(self.slots as u64);
        fold(self.trials_per_cell);
        fold(self.ks.len() as u64);
        for &k in &self.ks {
            fold(k as u64);
        }
        fold(self.deltas.len() as u64);
        for &d in &self.deltas {
            fold(d as u64);
        }
        fold(self.strategies.len() as u64);
        for s in &self.strategies {
            for b in s.name().bytes() {
                fold(b as u64);
            }
            fold(u64::MAX);
        }
        fold(self.profiles.len() as u64);
        for p in &self.profiles {
            for b in p.name().bytes() {
                fold(b as u64);
            }
            fold(u64::MAX);
        }
        fold(self.faults.len() as u64);
        for f in &self.faults {
            for b in f.name().bytes() {
                fold(b as u64);
            }
            fold(u64::MAX);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_shape() {
        let spec = CampaignSpec::default_grid();
        assert_eq!(spec.cell_count(), 24);
        assert!(spec.executions() > 100_000, "10⁵-execution floor");
        let cells = spec.cells();
        assert_eq!(cells.len(), 24);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Row-major: the innermost axis (profile) flips fastest.
        assert_eq!(cells[0].profile, StakeProfile::Uniform);
        assert_eq!(cells[1].profile, StakeProfile::Zipf);
        assert_eq!(cells[0].delta, cells[1].delta);
    }

    #[test]
    fn trial_seeds_are_pure_and_distinct() {
        let spec = CampaignSpec::quick_grid();
        let mut seen = std::collections::HashSet::new();
        for cell in 0..spec.cell_count() {
            for trial in 0..spec.trials_per_cell {
                assert_eq!(
                    spec.trial_seed(cell, trial),
                    spec.trial_seed(cell, trial),
                    "pure function"
                );
                assert!(
                    seen.insert(spec.trial_seed(cell, trial)),
                    "seed collision at cell {cell} trial {trial}"
                );
            }
        }
    }

    #[test]
    fn fingerprint_tracks_execution_relevant_fields() {
        let base = CampaignSpec::quick_grid();
        assert_eq!(base.fingerprint(), CampaignSpec::quick_grid().fingerprint());
        let mut other = base.clone();
        other.seed += 1;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = base.clone();
        other.trials_per_cell += 1;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = base.clone();
        other
            .strategies
            .push(SweepStrategy::Withholding { release_lag: 3 });
        assert_ne!(base.fingerprint(), other.fingerprint());
        assert_ne!(
            base.fingerprint(),
            CampaignSpec::default_grid().fingerprint()
        );
    }

    #[test]
    fn fault_axis_is_innermost_and_fingerprinted() {
        let mut spec = CampaignSpec::quick_grid();
        let base_fp = spec.fingerprint();
        spec.faults = vec![FaultProfile::None, FaultProfile::PartitionHalves];
        assert_eq!(spec.cell_count(), 48);
        let cells = spec.cells();
        assert_eq!(cells[0].fault, FaultProfile::None);
        assert_eq!(cells[1].fault, FaultProfile::PartitionHalves);
        assert_eq!(cells[0].profile, cells[1].profile, "fault flips fastest");
        assert_ne!(base_fp, spec.fingerprint(), "fault axis is fingerprinted");
    }

    #[test]
    fn fault_profiles_compile_to_valid_bounded_plans() {
        let profiles = [
            FaultProfile::None,
            FaultProfile::PartitionHalves,
            FaultProfile::Eclipse,
            FaultProfile::CrashRecover,
            FaultProfile::Loss { ppm: 250_000 },
        ];
        for p in profiles {
            for (nodes, slots) in [(2usize, 40usize), (10, 300), (6, 1_000)] {
                let plan = p.plan(nodes, slots);
                plan.validate(nodes);
                assert_eq!(plan.is_empty(), p == FaultProfile::None, "{}", p.name());
                let extra = plan
                    .worst_case_extra_delay()
                    .unwrap_or_else(|| panic!("{}: profile plans must be bounded", p.name()));
                assert!(extra <= 6, "{}: extra {extra}", p.name());
            }
        }
        assert_eq!(FaultProfile::Loss { ppm: 250_000 }.name(), "loss-250000ppm");
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(SweepStrategy::Honest.name(), "honest");
        assert_eq!(
            SweepStrategy::Withholding { release_lag: 8 }.name(),
            "withhold-lag8"
        );
        assert_eq!(SweepStrategy::Balance.name(), "balance");
        assert_eq!(StakeProfile::Zipf.name(), "zipf");
    }
}
