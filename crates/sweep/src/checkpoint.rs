//! Campaign checkpoints: atomic, line-oriented snapshots of completed
//! cells.
//!
//! ## Format (`multihonest-sweep-checkpoint/v3`)
//!
//! One compact-JSON object per line — a header, then one completed cell
//! per line:
//!
//! ```text
//! {"schema":"multihonest-sweep-checkpoint/v3","spec_fingerprint":1234567890,"kernel_version":1}
//! {"cell":0,"aggregate":{ ...CellAggregate... }}
//! {"cell":3,"aggregate":{ ... }}
//! ```
//!
//! `kernel_version` pins the execution engine revision
//! ([`ENGINE_KERNEL_VERSION`]) the snapshot's aggregates were computed
//! with. A campaign resumed under a different kernel would silently mix
//! aggregates from two different samplers into one grid, so a mismatch
//! is rejected with the same hard error as a wrong spec fingerprint.
//! (v2 snapshots carried no kernel tag and are likewise rejected — the
//! cells they hold cannot be attributed to a kernel.)
//!
//! Only **whole completed cells** are checkpointed: a cell's aggregate is
//! flushed once its last trial chunk lands, so every snapshot is a valid
//! prefix of the campaign regardless of where execution was interrupted.
//! Writes go to a temp file in the same directory, **fsync**, then
//! rename, so a kill mid-write leaves the previous snapshot intact and a
//! power loss cannot publish an unsynced rename. Should a snapshot still
//! arrive truncated (torn tail, non-atomic filesystem), loading **drops
//! the malformed tail with a logged warning** and salvages the parseable
//! prefix — every line is a self-contained cell, so a prefix is always a
//! valid (smaller) checkpoint and the dropped cells are simply
//! recomputed. A malformed *header* stays a hard error, as does a
//! [`CampaignSpec::fingerprint`] mismatch: those are not torn writes but
//! wrong files, and silently merging incompatible aggregates would
//! corrupt the campaign.
//!
//! [`CampaignSpec::fingerprint`]: crate::CampaignSpec::fingerprint

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use multihonest_scenario::ENGINE_KERNEL_VERSION;
use serde::Serialize;
use serde::Value;

use crate::aggregate::CellAggregate;

/// Schema tag of the checkpoint format.
pub const CHECKPOINT_SCHEMA: &str = "multihonest-sweep-checkpoint/v3";

/// One completed cell in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CompletedCell {
    /// The cell's row-major grid index.
    pub cell: u64,
    /// Its finished aggregate.
    pub aggregate: CellAggregate,
}

/// A checkpoint: the completed prefix of a campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Checkpoint {
    /// Always [`CHECKPOINT_SCHEMA`].
    pub schema: String,
    /// [`CampaignSpec::fingerprint`](crate::CampaignSpec::fingerprint)
    /// of the campaign this snapshot belongs to.
    pub spec_fingerprint: u64,
    /// [`ENGINE_KERNEL_VERSION`] of the engine that computed the
    /// aggregates.
    pub kernel_version: u32,
    /// Completed cells, sorted by cell index.
    pub completed: Vec<CompletedCell>,
}

impl Checkpoint {
    /// A checkpoint with no completed cells, stamped with the running
    /// engine's [`ENGINE_KERNEL_VERSION`].
    pub fn empty(spec_fingerprint: u64) -> Checkpoint {
        Checkpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            spec_fingerprint,
            kernel_version: ENGINE_KERNEL_VERSION,
            completed: Vec::new(),
        }
    }

    /// Renders the line-oriented byte stream of the checkpoint.
    fn render(&self) -> String {
        let mut out = format!(
            "{{\"schema\":{},\"spec_fingerprint\":{},\"kernel_version\":{}}}\n",
            serde_json::to_string(&self.schema).expect("serializable"),
            self.spec_fingerprint,
            self.kernel_version
        );
        for cell in &self.completed {
            out.push_str(&serde_json::to_string(cell).expect("serializable"));
            out.push('\n');
        }
        out
    }

    /// Writes the checkpoint atomically: temp file + fsync + rename. The
    /// fsync orders the data before the rename publishes it, so a crash
    /// cannot leave the *renamed* path holding unsynced garbage.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(self.render().as_bytes())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    }

    /// Loads and validates a checkpoint. Returns `Ok(None)` when `path`
    /// does not exist (a fresh campaign), an error when the file exists
    /// but has a malformed header or belongs to a different campaign
    /// spec. A malformed **tail** (torn write) is not an error: the
    /// parseable prefix of cell lines is salvaged and the rest dropped
    /// with a warning on stderr — dropped cells are recomputed on resume.
    pub fn load(path: &Path, spec_fingerprint: u64) -> io::Result<Option<Checkpoint>> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| bad_data("checkpoint is empty".to_string()))?;
        let header = serde_json::from_str(header)
            .map_err(|e| bad_data(format!("checkpoint header is not valid JSON: {e}")))?;
        let schema = field(&header, "schema")?
            .as_str()
            .ok_or_else(|| bad_data("checkpoint schema is not a string".to_string()))?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(bad_data(format!(
                "unsupported checkpoint schema '{schema}' (expected '{CHECKPOINT_SCHEMA}')"
            )));
        }
        let found_fingerprint = field_u64(&header, "spec_fingerprint")?;
        if found_fingerprint != spec_fingerprint {
            return Err(bad_data(format!(
                "checkpoint belongs to a different campaign \
                 (spec fingerprint {found_fingerprint:#x}, expected {spec_fingerprint:#x})"
            )));
        }
        let found_kernel = field_u64(&header, "kernel_version")?;
        if found_kernel != u64::from(ENGINE_KERNEL_VERSION) {
            return Err(bad_data(format!(
                "checkpoint was computed by engine kernel v{found_kernel}, but this \
                 build runs kernel v{ENGINE_KERNEL_VERSION}; resuming would mix \
                 aggregates from two different samplers — delete the checkpoint \
                 (or rerun under the matching build) to proceed"
            )));
        }
        let mut completed = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = serde_json::from_str(line)
                .map_err(|e| bad_data(format!("cell line is not valid JSON: {e}")))
                .and_then(|v| parse_completed_cell(&v));
            match parsed {
                Ok(cell) => completed.push(cell),
                Err(e) => {
                    // Torn tail: everything from the first malformed line
                    // on is dropped; the prefix is a valid checkpoint.
                    eprintln!(
                        "warning: {}: dropping malformed checkpoint tail \
                         from line {} ({}); {} completed cell(s) salvaged",
                        path.display(),
                        i + 2,
                        e,
                        completed.len()
                    );
                    break;
                }
            }
        }
        Ok(Some(Checkpoint {
            schema: schema.to_string(),
            spec_fingerprint: found_fingerprint,
            kernel_version: found_kernel as u32,
            completed,
        }))
    }
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn field<'a>(value: &'a Value, key: &str) -> io::Result<&'a Value> {
    value
        .get(key)
        .ok_or_else(|| bad_data(format!("checkpoint field '{key}' is missing")))
}

fn field_u64(value: &Value, key: &str) -> io::Result<u64> {
    field(value, key)?.as_u64().ok_or_else(|| {
        bad_data(format!(
            "checkpoint field '{key}' is not an unsigned integer"
        ))
    })
}

fn field_i64(value: &Value, key: &str) -> io::Result<i64> {
    field(value, key)?
        .as_i64()
        .ok_or_else(|| bad_data(format!("checkpoint field '{key}' is not an integer")))
}

fn field_u64_array(value: &Value, key: &str) -> io::Result<Vec<u64>> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| bad_data(format!("checkpoint field '{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| bad_data(format!("'{key}' holds a non-integer entry")))
        })
        .collect()
}

fn parse_completed_cell(value: &Value) -> io::Result<CompletedCell> {
    let agg = field(value, "aggregate")?;
    let violating_executions = field_u64_array(agg, "violating_executions")?;
    let violating_anchors = field_u64_array(agg, "violating_anchors")?;
    if violating_executions.len() != violating_anchors.len() {
        return Err(bad_data(
            "aggregate per-k arrays have mismatched lengths".to_string(),
        ));
    }
    Ok(CompletedCell {
        cell: field_u64(value, "cell")?,
        aggregate: CellAggregate {
            trials: field_u64(agg, "trials")?,
            violating_executions,
            violating_anchors,
            rollbacks: field_u64(agg, "rollbacks")?,
            max_slot_divergence: field_u64(agg, "max_slot_divergence")?,
            max_settlement_lag: field_i64(agg, "max_settlement_lag")?,
            chain_blocks: field_u64(agg, "chain_blocks")?,
            honest_chain_blocks: field_u64(agg, "honest_chain_blocks")?,
            final_height: field_u64(agg, "final_height")?,
            active_slots: field_u64(agg, "active_slots")?,
            deferred_deliveries: field_u64(agg, "deferred_deliveries")?,
            dropped_deliveries: field_u64(agg, "dropped_deliveries")?,
            worst_effective_delta: field_u64(agg, "worst_effective_delta")?,
            fingerprint: field_u64(agg, "fingerprint")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut agg = CellAggregate::new(3);
        agg.trials = 40;
        agg.violating_executions = vec![5, 2, 0];
        agg.violating_anchors = vec![31, 7, 0];
        agg.rollbacks = 12;
        agg.max_slot_divergence = 9;
        agg.max_settlement_lag = 17;
        agg.chain_blocks = 4000;
        agg.honest_chain_blocks = 3300;
        agg.final_height = 3900;
        agg.active_slots = 11_000;
        agg.deferred_deliveries = 23;
        agg.dropped_deliveries = 1;
        agg.worst_effective_delta = 7;
        agg.fingerprint = u64::MAX - 3; // exercise full u64 range
        let mut none_yet = CellAggregate::new(3);
        none_yet.trials = 40;
        none_yet.max_settlement_lag = -1;
        Checkpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            spec_fingerprint: 0xDEAD_BEEF_DEAD_BEEF,
            kernel_version: ENGINE_KERNEL_VERSION,
            completed: vec![
                CompletedCell {
                    cell: 0,
                    aggregate: agg,
                },
                CompletedCell {
                    cell: 3,
                    aggregate: none_yet,
                },
            ],
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let original = sample();
        original.write(&path).unwrap();
        let loaded = Checkpoint::load(&path, original.spec_fingerprint)
            .unwrap()
            .expect("file exists");
        assert_eq!(loaded, original);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_fresh_campaign() {
        let path = std::env::temp_dir().join("multihonest-sweep-ckpt-missing.json");
        assert_eq!(Checkpoint::load(&path, 7).unwrap(), None);
    }

    #[test]
    fn wrong_spec_fingerprint_rejected() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-spec.json");
        sample().write(&path).unwrap();
        let err = Checkpoint::load(&path, 1).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_kernel_version_rejected() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale-kernel.json");
        let mut stale = sample();
        stale.kernel_version = ENGINE_KERNEL_VERSION + 1;
        stale.write(&path).unwrap();
        let err = Checkpoint::load(&path, stale.spec_fingerprint).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("engine kernel"), "{err}");
        // A v2 header (no kernel tag at all) is rejected for the missing
        // field, not silently accepted.
        std::fs::write(
            &path,
            format!(
                "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"spec_fingerprint\":{}}}\n",
                stale.spec_fingerprint
            ),
        )
        .unwrap();
        let err = Checkpoint::load(&path, stale.spec_fingerprint).unwrap_err();
        assert!(err.to_string().contains("kernel_version"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_header_rejected() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.json");
        std::fs::write(&path, "{\"schema\": 12").unwrap();
        assert!(Checkpoint::load(&path, 7).is_err());
        std::fs::write(&path, "{\"schema\": \"other/v9\"}").unwrap();
        let err = Checkpoint::load(&path, 7).unwrap_err();
        assert!(err.to_string().contains("unsupported checkpoint schema"));
        std::fs::write(&path, "").unwrap();
        assert!(Checkpoint::load(&path, 7).is_err(), "empty file");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_salvaged_at_every_truncation_point() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.json");
        let original = sample();
        original.write(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let first_cell_end = header_end
            + bytes[header_end..]
                .iter()
                .position(|&b| b == b'\n')
                .unwrap()
            + 1;
        // Any truncation inside the cell lines salvages the parseable
        // prefix: a cell line counts once its full JSON content is
        // present (the trailing newline is optional at EOF). Never an
        // error.
        for cut in header_end..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let loaded = Checkpoint::load(&path, original.spec_fingerprint)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"))
                .expect("file exists");
            let expect = if cut >= bytes.len() - 1 {
                2
            } else {
                usize::from(cut >= first_cell_end - 1)
            };
            assert_eq!(loaded.completed.len(), expect, "cut at byte {cut}");
            assert_eq!(
                loaded.completed,
                original.completed[..expect],
                "salvaged prefix must be exact (cut {cut})"
            );
        }
        // A clean write loads whole.
        original.write(&path).unwrap();
        let full = Checkpoint::load(&path, original.spec_fingerprint)
            .unwrap()
            .unwrap();
        assert_eq!(full, original);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_header_is_an_error_not_a_salvage() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn-header.json");
        let original = sample();
        original.write(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        for cut in [1usize, header_end / 2, header_end.saturating_sub(1)] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                Checkpoint::load(&path, original.spec_fingerprint).is_err(),
                "cut at byte {cut} must not pass header validation"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
