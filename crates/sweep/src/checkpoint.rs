//! Campaign checkpoints: atomic JSON snapshots of completed cells.
//!
//! ## Format (`multihonest-sweep-checkpoint/v1`)
//!
//! ```json
//! {
//!   "schema": "multihonest-sweep-checkpoint/v1",
//!   "spec_fingerprint": 1234567890,
//!   "completed": [ { "cell": 0, "aggregate": { ...CellAggregate... } } ]
//! }
//! ```
//!
//! Only **whole completed cells** are checkpointed: a cell's aggregate is
//! flushed once its last trial chunk lands, so every snapshot is a valid
//! prefix of the campaign regardless of where execution was interrupted.
//! Writes go to a temp file in the same directory followed by a rename,
//! so a kill mid-write leaves the previous snapshot intact. On resume the
//! embedded [`CampaignSpec::fingerprint`] is compared; a mismatch is an
//! error rather than a silent merge of incompatible aggregates.
//!
//! [`CampaignSpec::fingerprint`]: crate::CampaignSpec::fingerprint

use std::fs;
use std::io;
use std::path::Path;

use serde::Serialize;
use serde::Value;

use crate::aggregate::CellAggregate;

/// Schema tag of the checkpoint format.
pub const CHECKPOINT_SCHEMA: &str = "multihonest-sweep-checkpoint/v1";

/// One completed cell in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CompletedCell {
    /// The cell's row-major grid index.
    pub cell: u64,
    /// Its finished aggregate.
    pub aggregate: CellAggregate,
}

/// A checkpoint: the completed prefix of a campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Checkpoint {
    /// Always [`CHECKPOINT_SCHEMA`].
    pub schema: String,
    /// [`CampaignSpec::fingerprint`](crate::CampaignSpec::fingerprint)
    /// of the campaign this snapshot belongs to.
    pub spec_fingerprint: u64,
    /// Completed cells, sorted by cell index.
    pub completed: Vec<CompletedCell>,
}

impl Checkpoint {
    /// A checkpoint with no completed cells.
    pub fn empty(spec_fingerprint: u64) -> Checkpoint {
        Checkpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            spec_fingerprint,
            completed: Vec::new(),
        }
    }

    /// Writes the checkpoint atomically: temp file + rename.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let rendered = serde_json::to_string_pretty(self).expect("serializable");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        fs::write(&tmp, rendered + "\n")?;
        fs::rename(&tmp, path)
    }

    /// Loads and validates a checkpoint. Returns `Ok(None)` when `path`
    /// does not exist (a fresh campaign), an error when the file exists
    /// but is malformed or belongs to a different campaign spec.
    pub fn load(path: &Path, spec_fingerprint: u64) -> io::Result<Option<Checkpoint>> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let value = serde_json::from_str(&text)
            .map_err(|e| bad_data(format!("checkpoint is not valid JSON: {e}")))?;
        let checkpoint = parse_checkpoint(&value)?;
        if checkpoint.spec_fingerprint != spec_fingerprint {
            return Err(bad_data(format!(
                "checkpoint belongs to a different campaign \
                 (spec fingerprint {:#x}, expected {:#x})",
                checkpoint.spec_fingerprint, spec_fingerprint
            )));
        }
        Ok(Some(checkpoint))
    }
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn field<'a>(value: &'a Value, key: &str) -> io::Result<&'a Value> {
    value
        .get(key)
        .ok_or_else(|| bad_data(format!("checkpoint field '{key}' is missing")))
}

fn field_u64(value: &Value, key: &str) -> io::Result<u64> {
    field(value, key)?.as_u64().ok_or_else(|| {
        bad_data(format!(
            "checkpoint field '{key}' is not an unsigned integer"
        ))
    })
}

fn field_i64(value: &Value, key: &str) -> io::Result<i64> {
    field(value, key)?
        .as_i64()
        .ok_or_else(|| bad_data(format!("checkpoint field '{key}' is not an integer")))
}

fn field_u64_array(value: &Value, key: &str) -> io::Result<Vec<u64>> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| bad_data(format!("checkpoint field '{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| bad_data(format!("'{key}' holds a non-integer entry")))
        })
        .collect()
}

fn parse_checkpoint(value: &Value) -> io::Result<Checkpoint> {
    let schema = field(value, "schema")?
        .as_str()
        .ok_or_else(|| bad_data("checkpoint schema is not a string".to_string()))?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(bad_data(format!(
            "unsupported checkpoint schema '{schema}' (expected '{CHECKPOINT_SCHEMA}')"
        )));
    }
    let completed = field(value, "completed")?
        .as_array()
        .ok_or_else(|| bad_data("checkpoint 'completed' is not an array".to_string()))?
        .iter()
        .map(parse_completed_cell)
        .collect::<io::Result<Vec<CompletedCell>>>()?;
    Ok(Checkpoint {
        schema: schema.to_string(),
        spec_fingerprint: field_u64(value, "spec_fingerprint")?,
        completed,
    })
}

fn parse_completed_cell(value: &Value) -> io::Result<CompletedCell> {
    let agg = field(value, "aggregate")?;
    let violating_executions = field_u64_array(agg, "violating_executions")?;
    let violating_anchors = field_u64_array(agg, "violating_anchors")?;
    if violating_executions.len() != violating_anchors.len() {
        return Err(bad_data(
            "aggregate per-k arrays have mismatched lengths".to_string(),
        ));
    }
    Ok(CompletedCell {
        cell: field_u64(value, "cell")?,
        aggregate: CellAggregate {
            trials: field_u64(agg, "trials")?,
            violating_executions,
            violating_anchors,
            rollbacks: field_u64(agg, "rollbacks")?,
            max_slot_divergence: field_u64(agg, "max_slot_divergence")?,
            max_settlement_lag: field_i64(agg, "max_settlement_lag")?,
            chain_blocks: field_u64(agg, "chain_blocks")?,
            honest_chain_blocks: field_u64(agg, "honest_chain_blocks")?,
            final_height: field_u64(agg, "final_height")?,
            active_slots: field_u64(agg, "active_slots")?,
            fingerprint: field_u64(agg, "fingerprint")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut agg = CellAggregate::new(3);
        agg.trials = 40;
        agg.violating_executions = vec![5, 2, 0];
        agg.violating_anchors = vec![31, 7, 0];
        agg.rollbacks = 12;
        agg.max_slot_divergence = 9;
        agg.max_settlement_lag = 17;
        agg.chain_blocks = 4000;
        agg.honest_chain_blocks = 3300;
        agg.final_height = 3900;
        agg.active_slots = 11_000;
        agg.fingerprint = u64::MAX - 3; // exercise full u64 range
        let mut none_yet = CellAggregate::new(3);
        none_yet.trials = 40;
        none_yet.max_settlement_lag = -1;
        Checkpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            spec_fingerprint: 0xDEAD_BEEF_DEAD_BEEF,
            completed: vec![
                CompletedCell {
                    cell: 0,
                    aggregate: agg,
                },
                CompletedCell {
                    cell: 3,
                    aggregate: none_yet,
                },
            ],
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let original = sample();
        original.write(&path).unwrap();
        let loaded = Checkpoint::load(&path, original.spec_fingerprint)
            .unwrap()
            .expect("file exists");
        assert_eq!(loaded, original);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_fresh_campaign() {
        let path = std::env::temp_dir().join("multihonest-sweep-ckpt-missing.json");
        assert_eq!(Checkpoint::load(&path, 7).unwrap(), None);
    }

    #[test]
    fn wrong_spec_fingerprint_rejected() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-spec.json");
        sample().write(&path).unwrap();
        let err = Checkpoint::load(&path, 1).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_json_rejected() {
        let dir = std::env::temp_dir().join("multihonest-sweep-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.json");
        std::fs::write(&path, "{\"schema\": 12").unwrap();
        assert!(Checkpoint::load(&path, 7).is_err());
        std::fs::write(&path, "{\"schema\": \"other/v9\"}").unwrap();
        let err = Checkpoint::load(&path, 7).unwrap_err();
        assert!(err.to_string().contains("unsupported checkpoint schema"));
        std::fs::remove_file(&path).unwrap();
    }
}
