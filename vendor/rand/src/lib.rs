//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the narrow slice of the `rand` 0.8 API the workspace
//! actually uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a high-quality,
//! fully deterministic generator. It does **not** match upstream `StdRng`
//! (ChaCha12) bit-for-bit, which is irrelevant for the workspace: all seeds
//! are local test fixtures, never wire-format or security material.

/// Low-level source of randomness. Object-safe.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`] (the analogue of
/// upstream's `Standard: Distribution<T>` bound).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement wrapping arithmetic keeps wide signed
                // ranges (e.g. i64::MIN..0) correct: the wrapped difference
                // reinterpreted as the same-width unsigned type is the true
                // span (a direct `as u64` would sign-extend narrow types).
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $ut as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
        }
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(i64::MIN..0);
            assert!(v < 0);
            let w = rng.gen_range(-1i32..i32::MAX);
            assert!((-1..i32::MAX).contains(&w));
            let x = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&x));
            let y = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = y; // full domain: any value is in range
        }
    }

    #[test]
    fn unsized_rng_usable() {
        fn takes_dyn<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            use super::Rng;
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let u = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&u));
    }
}
