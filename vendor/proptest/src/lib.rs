//! Offline vendored mini-`proptest`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the subset of the proptest API the workspace tests use:
//! the [`Strategy`] trait with `prop_map`, [`Just`], integer-range,
//! tuple and `prop::collection::vec` strategies, [`any`], `prop_oneof!`,
//! and the `proptest!` test-harness macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate for an offline deterministic
//! harness: no shrinking (a failing case panics with its case index and
//! the assert's own message), and every test function derives its RNG seed
//! from an FNV-1a hash of its name, so runs are reproducible across
//! machines and processes with no `PROPTEST_*` environment dependence.

use rand::rngs::StdRng;

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }

    /// Discards generated values failing `f`, resampling up to a bounded
    /// number of times.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> strategy::Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        strategy::Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub mod strategy {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding a clone of a fixed value (`proptest::strategy::Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 consecutive samples",
                self.whence
            );
        }
    }

    /// Uniform choice among boxed strategies (backing for `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// Builds a [`Union`]; used by the `prop_oneof!` expansion.
    pub fn union_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Boxes a strategy with its `Value` erased to a trait object; used by
    /// the `prop_oneof!` expansion.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            // [0, 1] inclusive of both endpoints, unlike Range<f64>.
            let unit = rng.gen::<u64>() as f64 / u64::MAX as f64;
            lo + unit * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($S:ident $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }
}

pub mod arbitrary {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut StdRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary_sample(rng: &mut StdRng) -> Self {
            rng.gen::<T>()
        }
    }

    /// Full-domain strategy for `T` (`proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_sample(rng)
        }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length bounds accepted by [`vec`].
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors with element strategy `strat` and length drawn
    /// from `size` (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(strat: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min <= max, "empty vec size range");
        VecStrategy { strat, min, max }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        strat: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.strat.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Stable test-name hash used to derive each test's deterministic RNG seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Just;
    pub use crate::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union_of(::std::vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// The proptest test-harness macro: each `fn name(args in strategies) body`
/// item becomes a `#[test]` that loops `config.cases` times over
/// deterministically sampled inputs (seed = FNV-1a of the test name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
            );
            for _case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u8..4, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), Just(2u32)].prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20);
        }
    }

    #[test]
    fn deterministic_by_name() {
        use crate::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u8..255, 0..10);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(crate::fnv1a("x"));
        let mut r2 = rand::rngs::StdRng::seed_from_u64(crate::fnv1a("x"));
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
