//! Offline vendored stand-in for `serde`.
//!
//! crates.io is unreachable in this build environment, so this crate provides
//! the minimal surface the workspace uses: a [`Serialize`] trait (implemented
//! through an intermediate JSON-like [`Value`] tree rather than upstream's
//! serializer visitors) and the `#[derive(Serialize)]` macro re-exported from
//! the sibling `serde_derive` stub. `serde_json` in `vendor/` renders the
//! [`Value`] tree.

pub use serde_derive::Serialize;

/// A JSON-like value tree — the serialization target of [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64` (integral numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
