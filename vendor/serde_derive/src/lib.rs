//! Offline vendored `#[derive(Serialize)]`.
//!
//! Written directly against the compiler's `proc_macro` API because `syn`,
//! `quote`, and `proc-macro2` are unavailable offline. Supports the shapes
//! the workspace actually derives on: non-generic structs with named fields
//! (plus unit structs), which covers every experiment-row struct in
//! `multihonest-bench`. Anything fancier fails loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => panic!("#[derive(Serialize)] (vendored stub): {msg}"),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name>`.
    let struct_kw = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "struct"))
        .ok_or("only structs are supported")?;
    let name = match tokens.get(struct_kw + 1) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("missing struct name".to_string()),
    };
    if matches!(tokens.get(struct_kw + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic struct `{name}` is not supported"));
    }

    // Unit struct: `struct Name;`
    let body = tokens[struct_kw + 2..].iter().find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
        _ => None,
    });
    let fields = match body {
        Some(stream) => named_fields(stream)?,
        None => Vec::new(),
    };

    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{\n\
         \t\t::serde::Value::Object(::std::vec![{entries}])\n\
         \t}}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("generated impl failed to parse: {e:?}"))
}

/// Extracts field names from the token stream inside a struct's braces:
/// comma-separated `(#[attr])* (pub (..)?)? name : Type` items.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !current.is_empty() {
                    fields.push(field_name(&current)?);
                    current.clear();
                }
            }
            _ => current.push(tok),
        }
    }
    if !current.is_empty() {
        fields.push(field_name(&current)?);
    }
    Ok(fields)
}

/// The field name is the ident immediately before the first top-level `:`
/// (skips doc-comment attributes and visibility tokens preceding it).
fn field_name(tokens: &[TokenTree]) -> Result<String, String> {
    let colon = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ':'))
        .ok_or("tuple structs are not supported")?;
    match tokens.get(colon.wrapping_sub(1)) {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        _ => Err("could not find field name".to_string()),
    }
}
