//! Offline vendored mini-`criterion`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides a source-compatible subset of the criterion 0.5 bench API:
//! [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up,
//! then `sample_size` timed batches. Samples outside the Tukey fences
//! (1.5 × IQR beyond the quartiles) are rejected as outliers — scheduler
//! preemptions, not the code under test — and the report prints
//! per-iteration **min, median, mean and standard deviation** over the
//! surviving samples, plus a **95% confidence interval on the mean**
//! (normal approximation: `mean ± 1.96·s/√n` over the survivors) and how
//! many samples were rejected, so regressions stand out against
//! run-to-run noise instead of hiding inside it: two runs whose CIs do
//! not overlap differ by more than the box's jitter. No plots or HTML
//! reports — enough to keep the perf trajectory honest.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation; recorded and echoed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration summary statistics of one benchmark run, computed over
/// the samples surviving IQR outlier rejection.
#[derive(Debug, Clone, Copy, Default)]
struct Stats {
    min: Duration,
    median: Duration,
    mean: Duration,
    /// Standard deviation of the surviving samples.
    stddev: Duration,
    /// Lower bound of the 95% confidence interval on the mean.
    ci_low: Duration,
    /// Upper bound of the 95% confidence interval on the mean.
    ci_high: Duration,
    /// Samples rejected by the Tukey fences (beyond 1.5 × IQR).
    outliers: usize,
}

impl Stats {
    /// Summarises sorted per-iteration samples: reject everything outside
    /// `[q1 − 1.5·IQR, q3 + 1.5·IQR]`, then report min/median/mean/stddev
    /// of the survivors. With fewer than 4 samples the fences degenerate
    /// to keeping everything.
    fn from_sorted(samples: &[Duration]) -> Stats {
        let n = samples.len();
        let q1 = samples[n / 4].as_secs_f64();
        let q3 = samples[(3 * n) / 4].as_secs_f64();
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let kept: Vec<f64> = samples
            .iter()
            .map(Duration::as_secs_f64)
            .filter(|&s| lo <= s && s <= hi)
            .collect();
        debug_assert!(
            !kept.is_empty(),
            "quartiles always survive their own fences"
        );
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        let var = kept.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / kept.len() as f64;
        // 95% CI on the mean, normal approximation over the survivors.
        // Sample counts are small but the batch means it summarizes are
        // already averages, so the CLT does most of the work; upstream
        // criterion bootstraps here, which offline simplicity forgoes.
        let half = 1.96 * var.sqrt() / (kept.len() as f64).sqrt();
        Stats {
            min: Duration::from_secs_f64(kept[0]),
            median: Duration::from_secs_f64(kept[kept.len() / 2]),
            mean: Duration::from_secs_f64(mean),
            stddev: Duration::from_secs_f64(var.sqrt()),
            ci_low: Duration::from_secs_f64((mean - half).max(0.0)),
            ci_high: Duration::from_secs_f64(mean + half),
            outliers: n - kept.len(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    stats: Stats,
}

impl Bencher {
    /// Times repeated calls of `routine` and records the per-iteration
    /// min/median/mean over `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow the batch until it takes
        // ≥ ~1ms so Instant overhead is amortized.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort();
        self.stats = Stats::from_sorted(&samples);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<F>(
        &mut self,
        id: impl Into<BenchmarkIdOrStr>,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            stats: Stats::default(),
        };
        routine(&mut bencher);
        self.report(&id, bencher.stats);
        self
    }

    /// Runs `routine` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkIdOrStr>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().0;
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            stats: Stats::default(),
        };
        routine(&mut bencher, input);
        self.report(&id, bencher.stats);
        self
    }

    fn report(&self, id: &str, stats: Stats) {
        let mut line = format!(
            "{}/{}: min {:?} median {:?} mean {:?} stddev {:?} 95% CI [{:?}, {:?}]",
            self.name,
            id,
            stats.min,
            stats.median,
            stats.mean,
            stats.stddev,
            stats.ci_low,
            stats.ci_high
        );
        if stats.outliers > 0 {
            let _ = write!(line, " [{} outlier(s) rejected]", stats.outliers);
        }
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let secs = stats.median.as_secs_f64();
            if secs > 0.0 {
                let _ = write!(line, " ({:.3e} {unit}/s at median)", count as f64 / secs);
            }
        }
        println!("{line}");
    }

    /// Ends the group (upstream consumes `self`; accepting `self` keeps
    /// call sites source-compatible).
    pub fn finish(self) {}
}

/// Conversion shim so `bench_function` accepts both `&str` and
/// [`BenchmarkId`], as upstream does.
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        BenchmarkIdOrStr(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        BenchmarkIdOrStr(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrStr(id.id)
    }
}

/// The benchmark manager passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        group.finish();
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn iqr_rejects_preemption_spikes() {
        // 19 tight samples and one 100× spike: the spike must be rejected
        // and the survivors' stats stay tight.
        let mut samples: Vec<Duration> = (0..19).map(|i| Duration::from_micros(100 + i)).collect();
        samples.push(Duration::from_millis(10));
        samples.sort();
        let stats = Stats::from_sorted(&samples);
        assert_eq!(stats.outliers, 1);
        assert!(stats.mean < Duration::from_micros(200), "{stats:?}");
        assert!(stats.stddev < Duration::from_micros(50), "{stats:?}");
        assert_eq!(stats.min, Duration::from_micros(100));

        // A clean run rejects nothing, and stddev reflects the spread.
        let clean: Vec<Duration> = (0..16).map(|i| Duration::from_micros(100 + i)).collect();
        let stats = Stats::from_sorted(&clean);
        assert_eq!(stats.outliers, 0);
        assert!(stats.stddev > Duration::ZERO);

        // Tiny sample counts degenerate gracefully.
        let two = [Duration::from_micros(1), Duration::from_micros(1000)];
        let stats = Stats::from_sorted(&two);
        assert_eq!(stats.outliers, 0);
    }

    #[test]
    fn confidence_interval_brackets_the_mean_and_tightens_with_samples() {
        // The CI straddles the mean, shrinks as √n grows, and collapses
        // to a point when every sample is identical.
        let wide: Vec<Duration> = (0..8)
            .map(|i| Duration::from_micros(100 + 10 * i))
            .collect();
        let narrow: Vec<Duration> = (0..128)
            .map(|i| Duration::from_micros(100 + 10 * (i % 8)))
            .collect();
        let ws = Stats::from_sorted(&wide);
        let ns = Stats::from_sorted(&narrow);
        assert!(ws.ci_low <= ws.mean && ws.mean <= ws.ci_high, "{ws:?}");
        assert!(
            ws.ci_low < ws.ci_high,
            "spread samples give a real interval"
        );
        // Same spread, 16× the samples → 4× tighter interval.
        let ww = ws.ci_high.as_secs_f64() - ws.ci_low.as_secs_f64();
        let nw = ns.ci_high.as_secs_f64() - ns.ci_low.as_secs_f64();
        assert!(
            nw < ww / 3.0,
            "CI must tighten with sample count: {nw} vs {ww}"
        );

        let constant = vec![Duration::from_micros(250); 10];
        let cs = Stats::from_sorted(&constant);
        assert_eq!(cs.ci_low, cs.mean);
        assert_eq!(cs.ci_high, cs.mean);

        // The negative tail of the approximation clamps at zero rather
        // than reporting a negative duration.
        let jittery = [
            Duration::from_nanos(0),
            Duration::from_nanos(1),
            Duration::from_nanos(400),
        ];
        let js = Stats::from_sorted(&jittery);
        assert!(js.ci_low >= Duration::ZERO);
    }
}
