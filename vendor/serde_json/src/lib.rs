//! Offline vendored stand-in for `serde_json`: renders the vendored
//! `serde::Value` tree as JSON text and parses JSON text back into a
//! `Value` tree. Only the entry points used by the workspace (`to_string`,
//! `to_string_pretty`, `from_str`) are provided.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization/parse error. The serialization pipeline is infallible;
/// [`from_str`] produces a message describing the first malformed token.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`] tree.
///
/// Integral numbers without sign become `UInt`, negative integrals `Int`,
/// everything else (fractions, exponents, overflow) `Float` — matching how
/// the serializer distinguishes the numeric variants.
///
/// # Errors
///
/// Returns an error describing the first malformed token, including
/// trailing garbage after a complete value.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // slicing at a char boundary is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("bad \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            code = code * 16 + v;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        if integral {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Shortest-roundtrip Display is valid JSON for finite floats;
                // extreme magnitudes switch to exponent form (also valid
                // JSON) to stay readable. NaN/Inf serialize as null.
                let abs = x.abs();
                if abs != 0.0 && !(1e-5..1e17).contains(&abs) {
                    out.push_str(&format!("{x:e}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => render_seq(
            items.iter().map(|v| (None::<&str>, v)),
            indent,
            depth,
            '[',
            ']',
            out,
        ),
        Value::Object(entries) => render_seq(
            entries.iter().map(|(k, v)| (Some(k.as_str()), v)),
            indent,
            depth,
            '{',
            '}',
            out,
        ),
    }
}

fn render_seq<'a, I>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    out: &mut String,
) where
    I: Iterator<Item = (Option<&'a str>, &'a Value)>,
{
    out.push(open);
    let mut first = true;
    for (key, v) in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        if let Some(k) = key {
            escape_into(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        render(v, indent, depth + 1, out);
    }
    if !first {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use serde::Value;

    #[test]
    fn parses_what_it_renders() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("grid \"x\"\n".to_string())),
            ("trials".to_string(), Value::UInt(u64::MAX)),
            ("lag".to_string(), Value::Int(-3)),
            ("p".to_string(), Value::Float(0.125)),
            ("tiny".to_string(), Value::Float(3.5e-20)),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "cells".to_string(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        for text in [
            super::to_string(&v).unwrap(),
            super::to_string_pretty(&v).unwrap(),
        ] {
            let back = super::from_str(&text).unwrap();
            assert_eq!(back, v, "round-trip through {text}");
        }
    }

    #[test]
    fn parser_accessors_and_escapes() {
        let v = super::from_str(
            "  {\"a\": [1, -2, 2.5], \"s\": \"x\\u0041\\n\", \"pair\": \"\\ud83d\\ude00\"} ",
        )
        .unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("xA\n"));
        assert_eq!(v.get("pair").unwrap().as_str(), Some("\u{1F600}"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "12 34", "\"open", "tru"] {
            assert!(super::from_str(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn renders_pretty_object() {
        let v = serde::Value::Object(vec![
            ("k".to_string(), serde::Value::UInt(100)),
            ("p".to_string(), serde::Value::Float(0.25)),
        ]);
        let text = super::to_string_pretty(&Holder(v)).unwrap();
        assert_eq!(text, "{\n  \"k\": 100,\n  \"p\": 0.25\n}");
    }

    struct Holder(serde::Value);

    impl serde::Serialize for Holder {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
}
