//! Offline vendored stand-in for `serde_json`: renders the vendored
//! `serde::Value` tree as JSON text. Only the entry points used by the
//! workspace binaries (`to_string`, `to_string_pretty`) are provided.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The vendored pipeline is infallible, so this type is
/// uninhabited in practice; it exists to keep call-site signatures
/// (`.expect("serializable")`) identical to upstream.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Shortest-roundtrip Display is valid JSON for finite floats;
                // extreme magnitudes switch to exponent form (also valid
                // JSON) to stay readable. NaN/Inf serialize as null.
                let abs = x.abs();
                if abs != 0.0 && !(1e-5..1e17).contains(&abs) {
                    out.push_str(&format!("{x:e}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => render_seq(
            items.iter().map(|v| (None::<&str>, v)),
            indent,
            depth,
            '[',
            ']',
            out,
        ),
        Value::Object(entries) => render_seq(
            entries.iter().map(|(k, v)| (Some(k.as_str()), v)),
            indent,
            depth,
            '{',
            '}',
            out,
        ),
    }
}

fn render_seq<'a, I>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    out: &mut String,
) where
    I: Iterator<Item = (Option<&'a str>, &'a Value)>,
{
    out.push(open);
    let mut first = true;
    for (key, v) in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        if let Some(k) = key {
            escape_into(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        render(v, indent, depth + 1, out);
    }
    if !first {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_pretty_object() {
        let v = serde::Value::Object(vec![
            ("k".to_string(), serde::Value::UInt(100)),
            ("p".to_string(), serde::Value::Float(0.25)),
        ]);
        let text = super::to_string_pretty(&Holder(v)).unwrap();
        assert_eq!(text, "{\n  \"k\": 100,\n  \"p\": 0.25\n}");
    }

    struct Holder(serde::Value);

    impl serde::Serialize for Holder {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
}
