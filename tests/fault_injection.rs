//! Repo-level coverage of the fault-injection layer: the empty plan is
//! bit-invisible on both engines, faulty executions reproduce their
//! frozen pins, short-lived faults add no settlement violations, crash
//! edge cases behave, and the induced-delay bound is a machine-checked
//! law over random plans.

use multihonest::sim::{
    FaultDirective, FaultPlan, FaultRuntime, LeaderSchedule, SimConfig, Simulation, Strategy,
    TieBreak,
};
use multihonest_testutil::golden;
use proptest::prelude::*;
// `multihonest::sim::Strategy` shadows the prelude's trait of the same
// name; the combinators need the trait itself in scope.
use proptest::Strategy as _;

fn grid_config(strategy: Strategy, delta: usize) -> SimConfig {
    SimConfig {
        honest_nodes: 6,
        adversarial_stake: 0.25,
        active_slot_coeff: 0.2,
        delta,
        slots: 250,
        tie_break: TieBreak::AdversarialOrder,
        strategy,
    }
}

fn sample(config: &SimConfig, seed: u64) -> LeaderSchedule {
    LeaderSchedule::sample(
        config.honest_nodes,
        config.adversarial_stake,
        config.active_slot_coeff,
        config.slots,
        seed,
    )
}

/// Asserts two reference-engine executions are trace-identical.
fn assert_same_execution(a: &Simulation, b: &Simulation, context: &str) {
    let slots = a.config().slots;
    for slot in 0..=slots {
        assert_eq!(
            a.tips_at(slot),
            b.tips_at(slot),
            "{context}: tips at {slot}"
        );
    }
    assert_eq!(a.rollbacks(), b.rollbacks(), "{context}: rollbacks");
    assert_eq!(a.metrics(), b.metrics(), "{context}: metrics");
    for k in [2usize, 8, 24] {
        assert_eq!(
            a.count_violating_slots(k, slots),
            b.count_violating_slots(k, slots),
            "{context}: violations at k = {k}"
        );
    }
}

/// The empty-plan bit-identity contract on the reference engine, over
/// the full strategy × Δ × seed grid: routing an execution through the
/// fault entry point with an empty plan changes nothing at all.
#[test]
fn empty_plan_is_bit_identical_to_baseline() {
    for strategy in Strategy::ALL {
        for delta in [0usize, 2, 4] {
            for seed in [1u64, 7] {
                let config = grid_config(strategy, delta);
                let mut s1 = config.strategy.instantiate();
                let baseline =
                    Simulation::run_with_schedule(&config, sample(&config, seed), s1.as_mut());
                let mut s2 = config.strategy.instantiate();
                let (faulted, ledger) = Simulation::run_with_schedule_faults(
                    &config,
                    sample(&config, seed),
                    s2.as_mut(),
                    &FaultPlan::new(),
                );
                let context = format!("{strategy:?} Δ={delta} seed={seed}");
                assert_same_execution(&baseline, &faulted, &context);
                assert_eq!(ledger.deferred, 0, "{context}");
                assert_eq!(ledger.dropped, 0, "{context}");
                assert_eq!(ledger.worst_effective_delta, 0, "{context}");
            }
        }
    }
}

/// The columnar twin of the contract: every frozen scenario fingerprint
/// reproduces through the fault path with an empty plan.
#[test]
fn empty_plan_reproduces_columnar_fingerprint_pins() {
    golden::assert_empty_plan_is_invisible();
}

/// Faulty executions are themselves pinned, on both engines.
#[test]
fn fault_scenario_pins_reproduce() {
    golden::assert_fault_scenario_pins();
}

/// A partition that heals within the network's Δ budget adds **zero**
/// settlement violations: at sparse leader density every deferred
/// delivery still lands inside the Δ′ ≤ Δ + window envelope the model
/// absorbs. Checked against the fault-free baseline per seed.
#[test]
fn partition_healed_within_delta_adds_no_violations() {
    let config = SimConfig {
        honest_nodes: 8,
        adversarial_stake: 0.1,
        active_slot_coeff: 0.05,
        delta: 4,
        slots: 300,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::Honest,
    };
    let plan = FaultPlan::new().with(FaultDirective::Partition {
        groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        start: 100,
        heal_slot: 103, // heals in 3 < Δ slots
    });
    for seed in 1u64..=10 {
        let mut s1 = config.strategy.instantiate();
        let baseline = Simulation::run_with_schedule(&config, sample(&config, seed), s1.as_mut());
        let mut s2 = config.strategy.instantiate();
        let (faulted, ledger) = Simulation::run_with_schedule_faults(
            &config,
            sample(&config, seed),
            s2.as_mut(),
            &plan,
        );
        assert!(
            ledger.worst_effective_delta <= plan.worst_case_delta(config.delta).unwrap(),
            "seed {seed}"
        );
        for k in [6usize, 12] {
            let base = baseline.count_violating_slots(k, config.slots);
            let fault = faulted.count_violating_slots(k, config.slots);
            assert_eq!(
                fault, base,
                "seed {seed} k {k}: a short-lived partition changed the violation count"
            );
        }
    }
}

/// Crash edge cases: a crash at the first slot runs to completion with
/// a sane ledger, and a never-recovering crash drops its parked
/// deliveries at the horizon and voids its healed-by slot.
#[test]
fn crash_edge_cases() {
    let config = grid_config(Strategy::PrivateWithholding, 2);

    let genesis_crash = FaultPlan::new().with(FaultDirective::Crash {
        node: 0,
        at: 1,
        recover_slot: 7,
    });
    let mut s = config.strategy.instantiate();
    let (sim, ledger) = Simulation::run_with_schedule_faults(
        &config,
        sample(&config, 3),
        s.as_mut(),
        &genesis_crash,
    );
    assert_eq!(sim.config().slots, config.slots);
    assert_eq!(ledger.dropped, 0, "bounded crash drops nothing");
    assert!(ledger.worst_effective_delta <= genesis_crash.worst_case_delta(config.delta).unwrap());

    let never_back = FaultPlan::new().with(FaultDirective::Crash {
        node: 2,
        at: 10,
        recover_slot: usize::MAX,
    });
    assert_eq!(never_back.worst_case_delta(config.delta), None);
    let mut s = config.strategy.instantiate();
    let (_, ledger) =
        Simulation::run_with_schedule_faults(&config, sample(&config, 3), s.as_mut(), &never_back);
    assert!(ledger.dropped > 0, "parked deliveries die with the node");
    assert_eq!(ledger.windows[0].healed_by, None, "a dead node never heals");
}

/// One synthetic honest delivery scheduled through a [`FaultRuntime`].
#[derive(Debug, Clone)]
struct Wire {
    src: usize,
    dst: usize,
    broadcast: usize,
    delay: usize,
}

fn arb_directive(nodes: usize) -> impl proptest::Strategy<Value = FaultDirective> {
    let window = (1usize..40, 1usize..6);
    prop_oneof![
        window
            .clone()
            .prop_map(move |(start, len)| FaultDirective::Partition {
                groups: vec![(0..nodes / 2).collect(), (nodes / 2..nodes).collect()],
                start,
                heal_slot: start + len,
            }),
        (0..nodes, window.clone()).prop_map(|(node, (start, len))| FaultDirective::Eclipse {
            node,
            start,
            until: start + len,
        }),
        (0..nodes, window.clone()).prop_map(|(node, (start, len))| FaultDirective::Crash {
            node,
            at: start,
            recover_slot: start + len,
        }),
        (0.0f64..=1.0, any::<u64>(), window).prop_map(|(p, salt, (start, len))| {
            FaultDirective::MessageLoss {
                p,
                salt,
                start,
                until: start + len,
            }
        }),
    ]
}

fn arb_wire(nodes: usize, delta: usize) -> impl proptest::Strategy<Value = Wire> {
    (0..nodes, 0..nodes, 1usize..45, 0..=delta).prop_map(|(src, dst, broadcast, delay)| Wire {
        src,
        dst,
        broadcast,
        delay,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The induced-delay law: composing a Δ-bounded delivery schedule
    /// with any bounded fault plan never delivers an honest message
    /// later than `broadcast + Δ + worst_case_extra_delay`, drops
    /// nothing, and the ledger's worst effective Δ respects the same
    /// bound.
    #[test]
    fn composition_never_exceeds_the_induced_delay_bound(
        directives in prop::collection::vec(arb_directive(6), 0..5),
        wires in prop::collection::vec(arb_wire(6, 3), 0..30),
    ) {
        const NODES: usize = 6;
        const DELTA: usize = 3;
        const SLOTS: usize = 120; // windows end by 46 ≪ 120: nothing can drop
        let mut plan = FaultPlan::new();
        for d in directives {
            plan.push(d);
        }
        let extra = plan.worst_case_extra_delay().expect("generated plans are bounded");
        let bound = DELTA + extra;

        let mut by_slot: Vec<Vec<(u32, u32)>> = vec![Vec::new(); SLOTS + 1];
        for (id, w) in wires.iter().enumerate() {
            by_slot[w.broadcast + w.delay].push((w.dst as u32, id as u32));
        }
        let mut rt = FaultRuntime::new(&plan, NODES, SLOTS);
        for (slot, bucket) in by_slot.iter_mut().enumerate().skip(1) {
            let mut due = std::mem::take(bucket);
            rt.apply(
                slot,
                &mut due,
                |id| multihonest::sim::DeliveryMeta {
                    src: wires[id as usize].src,
                    honest: true,
                    broadcast_slot: wires[id as usize].broadcast,
                },
                &mut (),
            );
            for &(_, id) in &due {
                let w = &wires[id as usize];
                prop_assert!(
                    slot - w.broadcast <= bound,
                    "delivery {id} took {} > Δ + extra = {bound}",
                    slot - w.broadcast
                );
            }
        }
        let ledger = rt.finish();
        prop_assert_eq!(ledger.dropped, 0, "all windows close before the horizon");
        prop_assert!(ledger.worst_effective_delta <= bound);
    }
}
