//! The streaming-pipeline law suite: the online `ForkFold` verdict must
//! equal the batch `validate_delta` oracle (at the `is_ok` level — the
//! streaming parity contract) over random strategy × Δ × fault
//! executions on **both** engines, the streamed columnar fork must be
//! bit-identical to the reference engine's extraction, and the frozen
//! 10⁵-slot streaming-validation fingerprints in `testutil` must
//! reproduce exactly.

use multihonest::fork::validate::validate_delta;
use multihonest::prelude::*;
use multihonest::scenario::{run_streaming_validated_faults_in, ColumnarSchedule, ExecutionArena};
use multihonest::sim::{FaultDirective, FaultPlan};
// `Strategy` would be ambiguous between the prelude's enum and
// proptest's trait under two glob imports — pin the enum explicitly.
use multihonest::sim::Strategy;
use multihonest_testutil::golden;
use proptest::prelude::*;

#[test]
fn streaming_validation_pins_reproduce() {
    golden::assert_streaming_validation_pins();
}

/// The fault plan of one proptest case: `0` is the empty plan, the rest
/// cycle through the directive kinds with proptest-chosen windows.
fn plan_for(kind: usize, start: usize, len: usize) -> FaultPlan {
    let start = start.max(1);
    match kind {
        0 => FaultPlan::default(),
        1 => FaultPlan::new().with(FaultDirective::Partition {
            groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
            start,
            heal_slot: start + len,
        }),
        2 => FaultPlan::new().with(FaultDirective::Crash {
            node: 1,
            at: start,
            recover_slot: start + len,
        }),
        _ => FaultPlan::new().with(FaultDirective::MessageLoss {
            p: 0.5,
            salt: 0xF00D,
            start,
            until: start + len,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// streaming `ForkFold` ≡ batch `validate_delta` on random
    /// strategy × Δ × fault executions, on both engines — and the two
    /// engines stream the same fork.
    #[test]
    fn streaming_verdict_matches_batch_oracle(
        strategy_idx in 0usize..3,
        delta in 0usize..4,
        slots in 60usize..300,
        seed in 0u64..1_000,
        fault_kind in 0usize..4,
        fault_start in 1usize..200,
        fault_len in 1usize..12,
    ) {
        let config = SimConfig {
            honest_nodes: 6,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.3,
            delta,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::ALL[strategy_idx],
        };
        let plan = plan_for(fault_kind, fault_start.min(slots - 1), fault_len);

        // Columnar engine: one pass builds, validates and margin-tracks
        // the fork online.
        let schedule = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        let mut arena = ExecutionArena::new();
        let mut s1 = config.strategy.instantiate();
        let out = run_streaming_validated_faults_in(
            &mut arena, &config, &schedule, s1.as_mut(), &plan, &mut (),
        );
        let batch = validate_delta(
            &out.pipeline.fork,
            &out.pipeline.characteristic_string,
            delta,
        );
        prop_assert_eq!(
            out.pipeline.validation.is_ok(),
            batch.is_ok(),
            "columnar streaming/batch parity broke: streaming {:?}, batch {:?}",
            out.pipeline.validation,
            batch
        );

        // Reference engine: extraction streams through the same ForkFold;
        // its verdict must agree with its own batch oracle, and its fork
        // with the columnar pipeline's.
        let rs = multihonest::sim::LeaderSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        let mut s2 = config.strategy.instantiate();
        let (refr, _) =
            Simulation::run_with_schedule_faults(&config, rs, s2.as_mut(), &plan);
        let extracted = refr.fork();
        prop_assert_eq!(
            extracted.streaming_validation().is_ok(),
            extracted.validate_against_axioms().is_ok(),
            "reference streaming/batch parity broke"
        );
        prop_assert_eq!(&out.pipeline.fork, extracted.fork(), "forks diverged across engines");
    }
}
