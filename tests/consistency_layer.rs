//! The indexed consistency-query layer must be observationally identical
//! to the naive Definition-3 scan it replaced: every `(s, k)` settlement
//! query, on every strategy, delay bound and seed, through both the
//! batch sweep and the retained per-query oracle — plus frozen
//! settled-slot counts on the canonical presets.

use multihonest::prelude::*;
use multihonest_testutil::golden;
// Selective: `proptest::prelude::*` would bring a second `Strategy`
// (the generator trait) into scope next to the simulator's enum.
use proptest::prelude::{any, prop_assert_eq, proptest, ProptestConfig};

fn equivalence_config(strategy: Strategy, delta: usize) -> SimConfig {
    SimConfig {
        honest_nodes: 6,
        adversarial_stake: 0.4,
        active_slot_coeff: 0.3,
        delta,
        slots: 200,
        tie_break: TieBreak::AdversarialOrder,
        strategy,
    }
}

#[test]
fn indexed_sweep_matches_oracle_exhaustively() {
    // All three strategies × Δ ∈ {0, 2, 3} × 8 seeds × several k: the
    // batch sweep, the O(1) point query and the naive oracle must agree
    // on every anchor.
    for strategy in Strategy::ALL {
        for delta in [0usize, 2, 3] {
            for seed in 0..8u64 {
                let cfg = equivalence_config(strategy, delta);
                let sim = Simulation::run(&cfg, seed);
                for k in [0usize, 1, 5, 12, 40] {
                    let batch = sim.settlement_violations(k);
                    assert_eq!(batch.len(), cfg.slots);
                    for s in 1..=cfg.slots {
                        let oracle = sim.settlement_violation_oracle(s, k);
                        assert_eq!(
                            batch[s - 1],
                            oracle,
                            "batch vs oracle at s={s}, k={k}, {strategy}, \
                             Δ={delta}, seed {seed}"
                        );
                        assert_eq!(
                            sim.settlement_violation(s, k),
                            oracle,
                            "point query vs oracle at s={s}, k={k}"
                        );
                    }
                    assert_eq!(
                        sim.first_violating_slot(k),
                        batch.iter().position(|&v| v).map(|i| i + 1),
                        "first_violating_slot at k={k}, {strategy}, Δ={delta}, seed {seed}"
                    );
                    assert_eq!(
                        sim.metrics().observed_settlement_violation(k),
                        batch.iter().any(|&v| v),
                        "max settlement lag disagrees with the sweep at k={k}"
                    );
                    assert_eq!(
                        sim.count_violating_slots(k, cfg.slots),
                        batch.iter().filter(|&&v| v).count(),
                        "count_violating_slots disagrees with the sweep at k={k}"
                    );
                    assert_eq!(
                        sim.count_violating_slots(k, usize::MAX),
                        batch.iter().filter(|&&v| v).count()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random configurations (stake, Δ, strategy, tie-breaking, seed, k)
    /// keep the indexed path equivalent to the oracle on every anchor.
    #[test]
    fn indexed_violation_matches_oracle_on_random_configs(
        seed in 0u64..10_000,
        delta in 0usize..4,
        strat in 0usize..3,
        consistent_ties in any::<bool>(),
        k in 0usize..30,
        stake_pct in 0usize..50,
    ) {
        let cfg = SimConfig {
            honest_nodes: 5,
            adversarial_stake: stake_pct as f64 / 100.0,
            active_slot_coeff: 0.35,
            delta,
            slots: 120,
            tie_break: if consistent_ties {
                TieBreak::Consistent
            } else {
                TieBreak::AdversarialOrder
            },
            strategy: Strategy::ALL[strat],
        };
        let sim = Simulation::run(&cfg, seed);
        let batch = sim.settlement_violations(k);
        for s in 1..=cfg.slots {
            prop_assert_eq!(
                batch[s - 1],
                sim.settlement_violation_oracle(s, k),
                "s={}, k={}, cfg={:?}", s, k, cfg
            );
        }
    }
}

#[test]
fn slot_domain_edges_are_guarded() {
    let cfg = equivalence_config(Strategy::PrivateWithholding, 2);
    let sim = Simulation::run(&cfg, 1);
    // The genesis boundary (slot 0) is out of the 1-based domain: no
    // recorded views, vacuously settled, no panic.
    assert!(sim.tips_at(0).is_empty());
    assert!(!sim.settlement_violation(0, 0));
    assert!(!sim.settlement_violation(0, 25));
    // Anchors beyond the horizon are vacuously settled too.
    assert!(!sim.settlement_violation(cfg.slots + 7, 0));
    // The divergence index exposes the per-anchor observations directly.
    let idx = sim.divergence_index();
    assert_eq!(idx.slots(), cfg.slots);
    for s in 1..=cfg.slots {
        match (
            idx.earliest_diverging_observation(s),
            idx.latest_diverging_observation(s),
        ) {
            (Some(e), Some(l)) => {
                assert!(s <= e && e <= l, "observation order at anchor {s}");
                assert!(sim.settlement_violation(s, l - s));
                assert!(!sim.settlement_violation(s, l - s + 1));
            }
            (None, None) => assert!(!sim.settlement_violation(s, 0)),
            other => panic!("half-set observation at anchor {s}: {other:?}"),
        }
    }
}

#[test]
fn preset_settled_slot_counts_are_frozen() {
    golden::assert_sim_settled_pins();
}
