//! The eviction law: [`run_horizon`] — segmented schedule sampling,
//! settled-prefix compaction, WAL checkpointing — is observationally
//! identical to a plain unsegmented streaming run. Metrics, per-`k`
//! violation aggregates, first violating anchors and the maximum
//! settlement lag must all agree; resuming from a mid-run WAL record
//! (including one with a torn tail) must reproduce the uninterrupted
//! report exactly.

use std::path::PathBuf;

use multihonest::scenario::{
    run_horizon, ColumnarSchedule, ColumnarSimulation, HorizonOptions, HorizonReport, LeaderProbs,
};
use multihonest::sim::{DivergenceIndex, Metrics, SimConfig, Strategy, TieBreak};

fn cfg(strategy: Strategy, slots: usize) -> SimConfig {
    SimConfig {
        honest_nodes: 5,
        adversarial_stake: 0.25,
        active_slot_coeff: 0.3,
        delta: 2,
        slots,
        tie_break: TieBreak::AdversarialOrder,
        strategy,
    }
}

fn stakes(config: &SimConfig) -> Vec<f64> {
    let share = (1.0 - config.adversarial_stake) / config.honest_nodes as f64;
    vec![share; config.honest_nodes]
}

fn probs(config: &SimConfig) -> LeaderProbs {
    LeaderProbs::weighted(
        &stakes(config),
        config.adversarial_stake,
        config.active_slot_coeff,
    )
}

/// The unsegmented ground truth: one full schedule, one streaming run.
fn unsegmented(config: &SimConfig, seed: u64) -> (Metrics, DivergenceIndex) {
    let schedule = ColumnarSchedule::sample_weighted(
        &stakes(config),
        config.adversarial_stake,
        config.active_slot_coeff,
        config.slots,
        seed,
    );
    let mut strategy = config.strategy.instantiate();
    ColumnarSimulation::run_streaming(config, &schedule, strategy.as_mut(), &mut ())
}

fn assert_law(report: &HorizonReport, config: &SimConfig, seed: u64, opts: &HorizonOptions) {
    let (metrics, divergence) = unsegmented(config, seed);
    assert_eq!(report.metrics, metrics);
    for (i, &k) in opts.ks.iter().enumerate() {
        assert_eq!(
            report.violating_anchors[i],
            divergence.count_violations(k, usize::MAX) as u64,
            "violation count at k={k}"
        );
        assert_eq!(
            report.first_violation[i],
            divergence.first_violation(k),
            "first violating anchor at k={k}"
        );
    }
}

fn small_opts() -> HorizonOptions {
    HorizonOptions {
        segment_slots: 4096,
        ks: vec![8, 16, 32, 64],
        max_live_blocks: 0,
        wal: None,
    }
}

#[test]
fn eviction_preserves_the_streaming_report_withholding() {
    let config = cfg(Strategy::PrivateWithholding, 120_000);
    let opts = small_opts();
    let report = run_horizon(&config, &probs(&config), 11, &opts).expect("horizon run");
    assert!(
        report.compactions > 0,
        "a 120k-slot withholding run must find settled compaction points"
    );
    assert!(
        report.peak_live_blocks < 120_000 / 10,
        "eviction must keep the live arena far below one block per 10 slots \
         (peak {})",
        report.peak_live_blocks
    );
    assert_eq!(report.resumed_at, None);
    assert_law(&report, &config, 11, &opts);
}

/// Segment-size invariance: the compaction cadence is an implementation
/// knob, so every segment size must produce the identical report. Small
/// segments compact far more often — including at points where the
/// withholding strategy's private branch is stale (pending a restart),
/// the case where an over-eager rebase once pinned the restart to the
/// compaction-time public height instead of the restart-time one.
#[test]
fn report_is_invariant_under_segment_size() {
    let config = cfg(Strategy::PrivateWithholding, 120_000);
    let (metrics, _) = unsegmented(&config, 11);
    for segment_slots in [512, 4096, 32_768] {
        let opts = HorizonOptions {
            segment_slots,
            ..small_opts()
        };
        let report = run_horizon(&config, &probs(&config), 11, &opts).expect("horizon run");
        assert_eq!(report.metrics, metrics, "segment size {segment_slots}");
    }
}

#[test]
fn eviction_preserves_the_streaming_report_honest() {
    let config = cfg(Strategy::Honest, 60_000);
    let opts = small_opts();
    let report = run_horizon(&config, &probs(&config), 5, &opts).expect("horizon run");
    assert!(report.compactions > 0);
    assert_law(&report, &config, 5, &opts);
}

/// A strategy holding arbitrary block references (the balance attack's
/// branch map) vetoes every compaction — the run must still be exactly
/// the streaming run, just without eviction.
#[test]
fn compaction_veto_degrades_to_plain_streaming() {
    let config = cfg(Strategy::BalanceAttack, 30_000);
    let opts = small_opts();
    let report = run_horizon(&config, &probs(&config), 3, &opts).expect("horizon run");
    assert_eq!(report.compactions, 0, "balance attack can never compact");
    assert_law(&report, &config, 3, &opts);
}

#[test]
fn memory_bound_turns_unbounded_growth_into_an_error() {
    let config = cfg(Strategy::BalanceAttack, 30_000);
    let opts = HorizonOptions {
        max_live_blocks: 64,
        ..small_opts()
    };
    let err = run_horizon(&config, &probs(&config), 3, &opts).expect_err("must exceed the bound");
    assert_eq!(err.kind(), std::io::ErrorKind::OutOfMemory);
}

fn temp_wal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("horizon_wal_{tag}_{}", std::process::id()))
}

/// Byte offsets of record boundaries in a WAL (after the 16-byte
/// header), read off the length-prefixed CRC frames.
fn record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 16;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        assert!(pos <= bytes.len(), "frame overruns the file");
        ends.push(pos);
    }
    ends
}

#[test]
fn wal_resume_reproduces_the_uninterrupted_report() {
    let config = cfg(Strategy::PrivateWithholding, 120_000);
    let wal = temp_wal("resume");
    let _ = std::fs::remove_file(&wal);
    let opts = HorizonOptions {
        wal: Some(wal.clone()),
        ..small_opts()
    };
    let full = run_horizon(&config, &probs(&config), 11, &opts).expect("full run");
    assert!(full.compactions >= 3, "need several checkpoints to chop");
    assert_law(&full, &config, 11, &opts);

    // Simulate a crash after the second compaction: truncate the WAL to
    // its second record, then resume.
    let bytes = std::fs::read(&wal).expect("read wal");
    let ends = record_ends(&bytes);
    assert!(ends.len() >= 3);
    std::fs::write(&wal, &bytes[..ends[1]]).expect("truncate wal");
    let resumed = run_horizon(&config, &probs(&config), 11, &opts).expect("resumed run");
    assert!(resumed.resumed_at.is_some(), "must resume mid-run");
    assert_eq!(
        HorizonReport {
            resumed_at: None,
            ..resumed.clone()
        },
        full,
        "resumed run must reproduce the uninterrupted report"
    );

    // Torn tail: a partial frame after the last good record (as a crash
    // mid-append would leave) is salvaged around.
    let mut torn = bytes[..ends[1]].to_vec();
    torn.extend_from_slice(&bytes[ends[1]..ends[2] - 3]);
    std::fs::write(&wal, &torn).expect("write torn wal");
    let salvaged = run_horizon(&config, &probs(&config), 11, &opts).expect("salvaged run");
    assert!(salvaged.resumed_at.is_some());
    assert_eq!(
        HorizonReport {
            resumed_at: None,
            ..salvaged.clone()
        },
        full
    );
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn wal_of_different_parameters_is_rejected() {
    let config = cfg(Strategy::PrivateWithholding, 60_000);
    let wal = temp_wal("params");
    let _ = std::fs::remove_file(&wal);
    let opts = HorizonOptions {
        wal: Some(wal.clone()),
        ..small_opts()
    };
    run_horizon(&config, &probs(&config), 1, &opts).expect("first run");
    let err = run_horizon(&config, &probs(&config), 2, &opts)
        .expect_err("a different seed must not resume this WAL");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_file(&wal);
}
