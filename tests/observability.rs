//! Repo-level coverage of the observability layer: the **bit-identity
//! law** (instrumented runs reproduce uninstrumented fingerprints
//! bit-for-bit across a strategy × Δ × faults × seed grid, on both
//! engines), shard-merge exactness for the registry histograms, schema
//! validity of the Chrome-trace / JSONL exporters, and observed-vs-plain
//! equality for the sweep executor and the long-horizon driver.

use multihonest::obs::{Histogram, ObsRecorder, Recorder};
use multihonest::scenario::{
    execution_fingerprint, run_horizon, run_horizon_observed, ColumnarSchedule, ColumnarSimulation,
    HorizonOptions, LeaderProbs,
};
use multihonest::sim::{
    record_ledger, FaultDirective, FaultPlan, ObsSink, SimConfig, Simulation, Strategy, TieBreak,
};
use multihonest::sweep::{run_campaign, run_campaign_observed, CampaignSpec, RunOptions};
use proptest::prelude::*;

fn grid_config(strategy: Strategy, delta: usize) -> SimConfig {
    SimConfig {
        honest_nodes: 6,
        adversarial_stake: 0.25,
        active_slot_coeff: 0.2,
        delta,
        slots: 250,
        tie_break: TieBreak::AdversarialOrder,
        strategy,
    }
}

fn sample(config: &SimConfig, seed: u64) -> ColumnarSchedule {
    ColumnarSchedule::sample(
        config.honest_nodes,
        config.adversarial_stake,
        config.active_slot_coeff,
        config.slots,
        seed,
    )
}

/// A small plan exercising every directive family inside the 250-slot
/// grid horizon.
fn grid_fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.push(FaultDirective::Partition {
        groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
        start: 40,
        heal_slot: 70,
    });
    plan.push(FaultDirective::Eclipse {
        node: 2,
        start: 120,
        until: 150,
    });
    plan
}

/// The tentpole contract: attaching the full recorder (span events,
/// obs-backed metrics sink, ledger mirroring) to the columnar engine
/// reproduces the uninstrumented execution bit-for-bit — fingerprint and
/// degradation ledger — and agrees with the reference engine's metrics,
/// over a strategy × Δ × plan × seed grid.
#[test]
fn instrumented_runs_are_bit_identical() {
    for strategy in Strategy::ALL {
        for delta in [0usize, 2] {
            for faulty in [false, true] {
                for seed in [1u64, 7] {
                    let config = grid_config(strategy, delta);
                    let plan = if faulty {
                        grid_fault_plan()
                    } else {
                        FaultPlan::new()
                    };
                    let context = format!("{strategy:?} Δ={delta} faulty={faulty} seed={seed}");

                    let mut s1 = config.strategy.instantiate();
                    let (plain, plain_ledger) = ColumnarSimulation::run_with_schedule_faults(
                        &config,
                        &sample(&config, seed),
                        s1.as_mut(),
                        &plan,
                    );

                    let mut sink_rec = ObsRecorder::new();
                    let mut engine_rec = sink_rec.shard(1);
                    let mut s2 = config.strategy.instantiate();
                    let (recorded, recorded_ledger) = {
                        let mut sink = ObsSink::new(&mut sink_rec);
                        ColumnarSimulation::run_with_schedule_faults_recorded(
                            &config,
                            &sample(&config, seed),
                            s2.as_mut(),
                            &plan,
                            &mut sink,
                            &mut engine_rec,
                        )
                    };
                    record_ledger(&mut sink_rec, &recorded_ledger);

                    assert_eq!(
                        execution_fingerprint(&plain),
                        execution_fingerprint(&recorded),
                        "{context}: fingerprint drift under instrumentation"
                    );
                    assert_eq!(plain_ledger, recorded_ledger, "{context}: ledgers");

                    // The reference engine on the same inputs agrees on
                    // the end-of-run metrics (dual-engine half of the law).
                    let mut s3 = config.strategy.instantiate();
                    let (reference, reference_ledger) = Simulation::run_with_schedule_faults(
                        &config,
                        multihonest::sim::LeaderSchedule::sample(
                            config.honest_nodes,
                            config.adversarial_stake,
                            config.active_slot_coeff,
                            config.slots,
                            seed,
                        ),
                        s3.as_mut(),
                        &plan,
                    );
                    assert_eq!(
                        reference.metrics(),
                        recorded.metrics(),
                        "{context}: engines disagree"
                    );
                    assert_eq!(
                        reference_ledger, recorded_ledger,
                        "{context}: cross-engine ledgers"
                    );

                    // The recorder actually observed the run: one
                    // engine-level span, and the best-height gauge tracks
                    // the final chain height.
                    assert_eq!(engine_rec.events().len(), 1, "{context}");
                    assert_eq!(engine_rec.events()[0].name, "scenario.execute", "{context}");
                    let height = sink_rec
                        .registry()
                        .gauge("sim.best_height")
                        .expect("per-slot gauge recorded")
                        .last;
                    assert_eq!(
                        height,
                        recorded.metrics().final_height as i64,
                        "{context}: gauge vs metrics"
                    );
                    if faulty {
                        assert_eq!(
                            sink_rec.registry().counter("faults.deferred"),
                            recorded_ledger.deferred,
                            "{context}: ledger mirror"
                        );
                    }
                }
            }
        }
    }
}

/// Exporters on a real instrumented run parse as JSON and carry the
/// Chrome trace-event schema (`ph: "X"`, µs timestamps) and the JSONL
/// record kinds.
#[test]
fn exported_traces_are_valid_json() {
    let config = grid_config(Strategy::PrivateWithholding, 2);
    let mut sink_rec = ObsRecorder::new();
    let mut engine_rec = sink_rec.shard(1);
    let mut strategy = config.strategy.instantiate();
    {
        let mut sink = ObsSink::new(&mut sink_rec);
        ColumnarSimulation::run_with_schedule_faults_recorded(
            &config,
            &sample(&config, 5),
            strategy.as_mut(),
            &grid_fault_plan(),
            &mut sink,
            &mut engine_rec,
        );
    }
    sink_rec.merge(engine_rec);

    let chrome = serde_json::from_str(&sink_rec.chrome_trace_json()).expect("chrome trace parses");
    let events = chrome
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        for key in ["ts", "dur", "pid", "tid"] {
            assert!(ev.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
        }
    }
    assert_eq!(
        chrome.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );

    let jsonl = sink_rec.jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        let rec = serde_json::from_str(line).expect("JSONL line parses");
        let kind = rec.get("type").and_then(|v| v.as_str()).expect("type");
        assert!(
            ["span", "counter", "gauge", "histogram", "meta"].contains(&kind),
            "unexpected record type {kind:?}"
        );
        assert!(rec.get("name").and_then(|v| v.as_str()).is_some());
    }
}

/// The sweep executor's observed entry point produces the same campaign
/// outcome as the plain one, and the merged recorder accounts for every
/// execution.
#[test]
fn observed_campaign_matches_plain() {
    let spec = CampaignSpec::quick_grid();
    let opts = RunOptions {
        threads: 2,
        checkpoint: None,
        stop_after_cells: None,
    };
    let plain = run_campaign(&spec, &opts).expect("plain campaign");
    let mut rec = ObsRecorder::new();
    let observed =
        run_campaign_observed(&spec, &opts, Some(&mut rec), None).expect("observed campaign");

    assert_eq!(plain.aggregates, observed.aggregates, "aggregate drift");
    assert_eq!(plain.executions_run, observed.executions_run);
    assert_eq!(
        rec.registry().counter("sweep.executions"),
        observed.executions_run,
        "every execution counted"
    );
    let unit_spans = rec.registry().histogram("sweep.unit").expect("unit spans");
    assert!(unit_spans.count() > 0);
    assert!(
        rec.events().iter().all(|e| e.tid >= 1),
        "worker tids start at 1"
    );
}

/// The long-horizon driver's observed entry point reproduces the plain
/// report exactly, and the recorder's compaction counter matches it.
#[test]
fn observed_horizon_matches_plain() {
    let config = SimConfig {
        honest_nodes: 6,
        adversarial_stake: 0.3,
        active_slot_coeff: 0.25,
        delta: 2,
        slots: 60_000,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::PrivateWithholding,
    };
    let share = (1.0 - config.adversarial_stake) / config.honest_nodes as f64;
    let probs = LeaderProbs::weighted(
        &vec![share; config.honest_nodes],
        config.adversarial_stake,
        config.active_slot_coeff,
    );
    let opts = HorizonOptions {
        segment_slots: 8_192,
        ks: vec![16, 64],
        max_live_blocks: 0,
        wal: None,
    };
    let plain = run_horizon(&config, &probs, 9, &opts).expect("plain horizon");
    let mut rec = ObsRecorder::new();
    let observed =
        run_horizon_observed(&config, &probs, 9, &opts, &mut rec, None).expect("observed horizon");

    assert_eq!(
        plain, observed,
        "horizon report drift under instrumentation"
    );
    assert_eq!(
        rec.registry().counter("horizon.compactions"),
        observed.compactions,
        "compaction spans track the report"
    );
    assert!(rec.registry().histogram("horizon.segment").is_some());
    assert!(rec.registry().gauge("horizon.peak_live_blocks").is_some());
}

/// Zero-cost sanity at the API level: the `()` recorder is inert — every
/// method is callable and records nothing observable.
#[test]
fn unit_recorder_is_inert() {
    let mut rec = ();
    rec.span_begin("a");
    rec.lap_start();
    rec.lap("phase");
    rec.counter("c", 1);
    rec.gauge("g", -1);
    rec.observe("h", 9);
    rec.span_end("a");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram shard-merge is observation-exact: recording a stream
    /// split across any number of worker shards and merging equals
    /// recording the whole stream into one histogram — count, sum,
    /// min/max, every bucket, and the quantile surface.
    #[test]
    fn histogram_shard_merge_is_observation_exact(
        observations in prop::collection::vec((any::<u64>(), 0usize..4), 0..200),
    ) {
        let mut shards = [
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
        ];
        let mut whole = Histogram::new();
        for &(value, shard) in &observations {
            shards[shard].record(value);
            whole.record(value);
        }
        let mut merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.bucket_counts(), whole.bucket_counts());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q), "q = {}", q);
        }
    }
}
