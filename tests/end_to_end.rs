//! Cross-crate integration: the game, the recurrences, the Catalan theory
//! and the fork definitions must all tell the same story about the same
//! strings.

use multihonest::margin::recurrence;
use multihonest::prelude::*;
use multihonest_testutil::{invariants, rng, sample_strings};

use multihonest::adversary::game::RandomAdversary;
use multihonest::fork::generate;

#[test]
fn game_forks_never_beat_the_recurrence() {
    // Any fork produced by playing the settlement game — with any
    // adversary — has definitional margins bounded by Theorem 5's
    // recurrence, at every cut.
    let cond = BernoulliCondition::new(0.2, 0.3).unwrap();
    let mut adv = RandomAdversary::new(rng(3));
    for w in sample_strings(&cond, 2, 25, 25) {
        let game = SettlementGame::new(w.clone());
        let fork = game.play(&mut adv);
        invariants::assert_axiom_conformant(&fork);
        let closed = generate::close(&fork);
        invariants::assert_margins_dominated(&closed, &w, "settlement game fork");
    }
}

#[test]
fn astar_realizes_what_catalan_slots_forbid() {
    // Wherever a uniquely honest Catalan slot sits at position t, the
    // margin µ_{x}(y) with x ending just before t must be negative for
    // every suffix — so even the OPTIMAL adversary's fork shows no
    // x-balanced configuration past it.
    let cond = BernoulliCondition::new(0.3, 0.5).unwrap();
    for w in sample_strings(&cond, 5, 25, 40) {
        let cat = CatalanAnalysis::new(&w);
        let fork = OptimalAdversary::build(&w);
        assert!(is_canonical(&fork));
        let ra = ReachAnalysis::new(&fork);
        let margins = ra.relative_margins();
        for s in cat.uniquely_honest_catalan_slots() {
            // µ_{w1..s−1}(suffix) < 0 — definitional, on the optimal fork.
            assert!(
                margins[s - 1] < 0,
                "uniquely honest Catalan slot {s} of {w} left margin ≥ 0"
            );
            assert!(recurrence::has_uvp(&w, s), "Lemma 1 must agree");
        }
    }
}

#[test]
fn settled_slots_are_never_violated_in_canonical_forks() {
    // If the margin says slot s is k-settled, then no fork — in
    // particular not the canonical one — may witness a violation:
    // check via the balanced-fork predicate on A*'s fork.
    let cond = BernoulliCondition::new(0.25, 0.4).unwrap();
    for w in sample_strings(&cond, 8, 15, 30) {
        let fork = OptimalAdversary::build(&w);
        // One batch scan instead of |w| independent margin walks.
        let settled = recurrence::settled_slots(&w, 1);
        for s in 1..=w.len() {
            assert_eq!(
                settled[s - 1],
                recurrence::is_slot_settled(&w, s, 1),
                "batch scan disagrees with per-slot predicate at slot {s} of {w}"
            );
            if settled[s - 1] {
                assert!(
                    !multihonest::fork::balanced::violates_settlement(&fork, s),
                    "slot {s} of {w} was settled but violated"
                );
            }
        }
    }
}

#[test]
fn catalan_settlement_implies_margin_settlement() {
    // Theorem 3's sufficient condition is one-sided: a uniquely honest
    // Catalan slot inside the window settles the slot; the margin
    // predicate must agree (but may settle more).
    let cond = BernoulliCondition::new(0.15, 0.35).unwrap();
    for w in sample_strings(&cond, 13, 40, 60) {
        let cat = CatalanAnalysis::new(&w);
        for s in 1..=w.len() {
            for k in [1usize, 5, 10] {
                if s + k <= w.len() && cat.settles_by_unique_catalan(s, k) {
                    assert!(
                        recurrence::is_slot_settled(&w, s, k),
                        "slot {s}, k = {k}, w = {w}"
                    );
                }
            }
        }
    }
}

#[test]
fn dominance_transfers_to_adaptive_adversaries() {
    // Strings sampled from a martingale-type adversary (per-slot
    // adversarial probability ≤ p_A) violate settlement no more often
    // than the i.i.d. ceiling — the mechanism behind the second halves of
    // Theorems 1 and 2.
    use multihonest::chars::dist::AdaptiveBiasSampler;
    let ceiling = BernoulliCondition::new(0.2, 0.4).unwrap();
    let adaptive = AdaptiveBiasSampler::new(ceiling, 0.6).unwrap();
    let mut rng = rng(21);
    let trials = 4000;
    let (prefix, k) = (60usize, 8usize);
    let mut hits_adaptive = 0usize;
    let mut hits_iid = 0usize;
    for _ in 0..trials {
        let wa = adaptive.sample(&mut rng, prefix + k);
        if recurrence::margin_trace(&wa, prefix)[k] >= 0 {
            hits_adaptive += 1;
        }
        let wi = ceiling.sample(&mut rng, prefix + k);
        if recurrence::margin_trace(&wi, prefix)[k] >= 0 {
            hits_iid += 1;
        }
    }
    // Allow generous sampling noise; the adaptive rate must not exceed
    // the i.i.d. rate materially.
    let fa = hits_adaptive as f64 / trials as f64;
    let fi = hits_iid as f64 / trials as f64;
    assert!(fa <= fi + 0.02, "adaptive {fa} vs iid {fi}");
}

#[test]
fn cp_violations_respect_theorem8_ordering() {
    // k-CP violation ⇒ k-CP^slot violation on the same fork.
    let cond = BernoulliCondition::new(0.2, 0.3).unwrap();
    for w in sample_strings(&cond, 34, 10, 20) {
        let fork = OptimalAdversary::build(&w);
        for k in 0..6 {
            if multihonest::fork::balanced::violates_k_cp(&fork, k) {
                assert!(multihonest::fork::balanced::violates_k_cp_slot(&fork, k));
            }
        }
    }
}
