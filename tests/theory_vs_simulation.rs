//! The protocol simulator must stay inside the envelope the theory draws:
//! extracted forks satisfy the axioms, real adversaries never beat the
//! optimal margins, and observed violation rates sit below the exact DP.

use multihonest::fork::generate;
use multihonest::margin::recurrence;
use multihonest::prelude::*;
use multihonest_testutil::{invariants, presets};

fn base_config() -> SimConfig {
    presets::base_sim()
}

#[test]
fn every_strategy_produces_axiom_conforming_executions() {
    for strategy in Strategy::ALL {
        for delta in [0usize, 1, 4] {
            for seed in 0..3 {
                let cfg = SimConfig {
                    strategy,
                    delta,
                    ..base_config()
                };
                let sim = Simulation::run(&cfg, seed);
                let fork = sim.fork();
                assert_eq!(
                    fork.validate_against_axioms(),
                    Ok(()),
                    "strategy {strategy}, Δ = {delta}, seed {seed}"
                );
            }
        }
    }
}

#[test]
fn simulated_adversaries_never_beat_the_recurrence_margins() {
    // The executed fork (closed) has definitional relative margins below
    // the Theorem-5 optimum at every cut, on the Δ-reduced string.
    for strategy in Strategy::ALL {
        let cfg = SimConfig {
            strategy,
            slots: 200,
            ..base_config()
        };
        let sim = Simulation::run(&cfg, 7);
        let fork = sim.fork().fork().clone();
        invariants::assert_axiom_conformant(&fork);
        let closed = generate::close(&fork);
        let w = closed.string().clone();
        invariants::assert_margins_dominated(&closed, &w, &format!("strategy {strategy}"));
    }
}

#[test]
fn observed_settlement_violations_are_margin_certified() {
    // Whenever the simulation exhibits an (s, k)-violation, the optimal
    // adversary must also be able to produce one on the same string:
    // the recurrence margin at the same anchor must go non-negative at
    // some horizon ≥ the number of *active* slots in the window.
    let mut checked = 0;
    for seed in 0..10u64 {
        let cfg = presets::high_stake_sim();
        let sim = Simulation::run(&cfg, seed);
        let semi = sim.characteristic_string();
        let reduced = Reduction::new(0).apply(&semi);
        let w = reduced.reduced();
        let k = 10;
        let violations = sim.settlement_violations(k);
        for s in 1..=cfg.slots.saturating_sub(2 * k) {
            if violations[s - 1] {
                // Anchor: the margin split just before the first active
                // slot ≥ s.
                let cut = (s..=cfg.slots)
                    .find_map(|t| reduced.reduced_slot(t))
                    .map(|j| j - 1)
                    .unwrap_or(w.len());
                let violated = recurrence::violates_settlement(w, cut + 1, 0);
                assert!(
                    violated,
                    "simulation violated (s={s}, k={k}, seed={seed}) \
                     but margins say impossible"
                );
                checked += 1;
            }
        }
        if checked > 0 {
            break;
        }
    }
    // The 45%-stake withholding adversary must produce at least one
    // violation across the attempted seeds for the test to be meaningful.
    assert!(
        checked > 0,
        "expected some observed violations at 45% stake"
    );
}

#[test]
fn violation_frequency_tracks_adversarial_stake() {
    // More stake, more observed rollbacks (matching the DP's monotonicity).
    let count_violations = |stake: f64| -> usize {
        let mut total = 0;
        for seed in 0..4 {
            let cfg = SimConfig {
                adversarial_stake: stake,
                slots: 600,
                ..base_config()
            };
            let sim = Simulation::run(&cfg, seed);
            total += sim.count_violating_slots(15, 560);
        }
        total
    };
    let weak = count_violations(0.1);
    let strong = count_violations(0.45);
    assert!(
        strong > weak,
        "45% adversary ({strong}) should out-violate 10% ({weak})"
    );
}

#[test]
fn honest_executions_match_chain_growth_theory() {
    // With no adversary interference, growth equals the active-slot
    // density and quality is 1.
    let cfg = presets::honest_sim();
    let sim = Simulation::run(&cfg, 3);
    let m = sim.metrics();
    assert!((m.chain_quality() - 1.0).abs() < 1e-12);
    let density = m.active_slots as f64 / cfg.slots as f64;
    assert!((m.chain_growth() - density).abs() < 0.01);
    // Concurrent honest leaders split views even with no adversary — the
    // paper's core ambiguity (each leader keeps its own block on the
    // first-seen tie) — but only transiently: resolution arrives with the
    // next uniquely honest slot, well inside a moderate window.
    assert!(
        m.max_slot_divergence > 0,
        "f = 0.3 must yield multi-leader slots"
    );
    assert!(!m.observed_settlement_violation(25));
}

#[test]
fn delta_degrades_consistency_monotonically() {
    // Larger Δ gives the withholding adversary more room: across seeds,
    // total violations with Δ = 4 must be at least those with Δ = 0.
    let run = |delta: usize| -> usize {
        (0..5)
            .map(|seed| {
                let cfg = SimConfig {
                    delta,
                    slots: 500,
                    ..base_config()
                };
                let sim = Simulation::run(&cfg, seed);
                sim.count_violating_slots(12, 460)
            })
            .sum()
    };
    let sync = run(0);
    let delayed = run(4);
    assert!(
        delayed + 5 >= sync,
        "Δ=4 ({delayed}) should not be far safer than Δ=0 ({sync})"
    );
}
