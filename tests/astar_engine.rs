//! Equivalence suite for the incremental `A*` engine: the engine-built
//! fork must be **bit-identical** to the definitional oracle at every
//! prefix (not just at the end), the [`ReachEngine`] must agree with a
//! fresh definitional [`ReachAnalysis`] after every step, and the frozen
//! canonical/Monte-Carlo pins in `testutil` must reproduce exactly.

use multihonest::adversary::{astar, is_canonical, AstarBuilder, OptimalAdversary};
use multihonest::catalan::exhaustive_strings;
use multihonest::chars::{CharString, Symbol};
use multihonest::fork::{Fork, ReachAnalysis, ReachEngine};
use multihonest_testutil::golden;
use proptest::prelude::*;

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    prop_oneof![
        Just(Symbol::UniqueHonest),
        Just(Symbol::MultiHonest),
        Just(Symbol::Adversarial),
    ]
}

fn arb_string(max_len: usize) -> impl Strategy<Value = CharString> {
    prop::collection::vec(arb_symbol(), 0..=max_len).prop_map(CharString::from_symbols)
}

/// Steps the engine and the definitional oracle side by side over `w`,
/// asserting after **every** symbol that the two forks are bit-identical
/// and that the engine's reach state matches a fresh definitional
/// analysis of the fork.
fn assert_lockstep_equivalence(w: &CharString) {
    let mut builder = AstarBuilder::new();
    let mut oracle = Fork::trivial();
    for (slot, sym) in w.iter_slots() {
        builder.step(sym);
        astar::reference::step(&mut oracle, sym);
        assert_eq!(
            builder.fork(),
            &oracle,
            "engine fork diverged from the oracle after slot {slot} of {w}"
        );
        // The reach state over the engine's own fork must agree with the
        // definitional analysis (reach per tine, ρ, reach-level sets).
        let mut engine = ReachEngine::new(oracle.clone());
        let ra = ReachAnalysis::new(&oracle);
        assert_eq!(
            engine.rho(),
            ra.rho(),
            "ρ diverged after slot {slot} of {w}"
        );
        for v in oracle.vertices() {
            assert_eq!(engine.reach(v), ra.reach(v), "reach({v:?}) of {w}");
            assert_eq!(engine.gap(v), ra.gap(v), "gap({v:?}) of {w}");
        }
        for r in [-1, 0, engine.rho()] {
            assert_eq!(
                engine.tines_with_reach(r),
                ra.tines_with_reach(r).as_slice(),
                "reach-{r} set diverged after slot {slot} of {w}"
            );
        }
        if !ra.tines_with_reach(0).is_empty() {
            // The engine's selection must match the definitional pair scan.
            let rho = ra.rho();
            let (max_reach, zero) = (ra.tines_with_reach(rho), ra.tines_with_reach(0));
            let mut best: Option<(usize, _, _)> = None;
            for &r in &max_reach {
                for &z in &zero {
                    if r == z {
                        continue;
                    }
                    let l = oracle.label(oracle.last_common_vertex(r, z));
                    if best.is_none_or(|(bl, _, _)| l < bl) {
                        best = Some((l, r, z));
                    }
                }
            }
            let expected = best.map_or((zero[0], zero[0]), |(_, r, z)| (r, z));
            assert_eq!(
                engine.earliest_diverging_pair(),
                expected,
                "diverging pair after slot {slot} of {w}"
            );
        }
    }
}

#[test]
fn lockstep_equivalence_on_all_strings_up_to_length_6() {
    // 3^0 + … + 3^6 = 1093 strings, every prefix of each checked.
    for n in 0..=6 {
        for w in exhaustive_strings(n) {
            assert_lockstep_equivalence(&w);
        }
    }
}

#[test]
fn canonical_and_mc_pins_reproduce() {
    golden::assert_canonical_pins();
    golden::assert_canonical_mc_pins();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Engine ≡ oracle, prefix by prefix, on random strings.
    #[test]
    fn lockstep_equivalence_on_random_strings(w in arb_string(18)) {
        assert_lockstep_equivalence(&w);
    }

    /// Batch engine builds equal the oracle and stay canonical on longer
    /// random strings (final forks only — lockstep above covers prefixes).
    #[test]
    fn batch_equivalence_on_longer_strings(w in arb_string(120)) {
        let fork = OptimalAdversary::build(&w);
        prop_assert_eq!(&fork, &astar::reference::build(&w));
        prop_assert!(is_canonical(&fork));
    }
}
