//! Equivalence suite for the columnar scenario engine: every execution
//! must be **bit-identical** to `sim::reference` — tip trajectories,
//! rollback records, metrics and the settlement index — across the
//! built-in strategy grid, the scenario library (lagged releases,
//! burst/jitter schedules, heterogeneous stake/latency profiles), and
//! random configurations; and the frozen long-horizon fingerprints in
//! `testutil` must reproduce exactly.

use multihonest::prelude::*;
use multihonest::scenario::{
    scenario_library, ColumnarSchedule, ColumnarSimulation, LaggedWithholding, NetworkSchedule,
    NodeProfile,
};
use multihonest::sim::MetricsAccumulator;
// `Strategy` would be ambiguous between the prelude's enum and
// proptest's trait under two glob imports — pin the enum explicitly.
use multihonest::sim::Strategy;
use multihonest_testutil::golden;
use proptest::prelude::*;

/// Asserts a columnar run of `config` is trace-identical to the
/// reference engine, comparing tips, rollbacks, metrics, the settlement
/// index and several violation sweeps.
fn assert_bit_identical(config: &SimConfig, seed: u64, context: &str) {
    let cols = ColumnarSimulation::run(config, seed);
    let refr = Simulation::run(config, seed);
    for t in 0..=config.slots {
        let expect: Vec<u32> = refr.tips_at(t).iter().map(|b| b.index() as u32).collect();
        assert_eq!(
            cols.tips_at(t),
            expect.as_slice(),
            "{context}: tips diverged at slot {t}"
        );
    }
    let expect_rb: Vec<(u32, u32, u32)> = refr
        .rollbacks()
        .iter()
        .map(|&(t, o, n)| (t as u32, o.index() as u32, n.index() as u32))
        .collect();
    assert_eq!(
        cols.rollbacks(),
        expect_rb.as_slice(),
        "{context}: rollbacks diverged"
    );
    assert_eq!(
        cols.metrics(),
        refr.metrics(),
        "{context}: metrics diverged"
    );
    assert_eq!(
        cols.divergence_index(),
        refr.divergence_index(),
        "{context}: settlement index diverged"
    );
    for k in [0usize, 1, 5, 20] {
        assert_eq!(
            cols.settlement_violations(k),
            refr.settlement_violations(k),
            "{context}: violations diverged at k = {k}"
        );
        assert_eq!(
            cols.first_violating_slot(k),
            refr.first_violating_slot(k),
            "{context}: first violation diverged at k = {k}"
        );
    }
}

#[test]
fn exhaustive_strategy_delta_seed_grid_is_bit_identical() {
    // The acceptance grid: every built-in strategy × Δ × tie-break ×
    // seed, at a horizon long enough for releases, races and rollbacks.
    for strategy in Strategy::ALL {
        for delta in [0usize, 1, 3] {
            for tie_break in [TieBreak::AdversarialOrder, TieBreak::Consistent] {
                for seed in 0..3u64 {
                    let config = SimConfig {
                        honest_nodes: 6,
                        adversarial_stake: 0.35,
                        active_slot_coeff: 0.35,
                        delta,
                        slots: 250,
                        tie_break,
                        strategy,
                    };
                    assert_bit_identical(
                        &config,
                        seed,
                        &format!("{strategy}/Δ={delta}/{tie_break:?}/seed={seed}"),
                    );
                }
            }
        }
    }
}

#[test]
fn scenario_library_is_bit_identical_to_reference() {
    // Every library scenario — lagged withholding, burst and jitter
    // schedules, zipf stake, latency profiles — replayed on both engines
    // with the same strategy objects and schedules.
    for sc in scenario_library(400) {
        let mut ref_strategy = sc.strategy();
        let reference = Simulation::run_with_schedule(
            &sc.config,
            sc.reference_schedule(13),
            ref_strategy.as_mut(),
        );
        let mut col_strategy = sc.strategy();
        let schedule = sc.schedule(13);
        let cols =
            ColumnarSimulation::run_with_schedule(&sc.config, &schedule, col_strategy.as_mut());
        assert_eq!(cols.metrics(), reference.metrics(), "{}", sc.name);
        assert_eq!(
            cols.divergence_index(),
            reference.divergence_index(),
            "{}",
            sc.name
        );
        for t in 1..=sc.config.slots {
            let expect: Vec<u32> = reference
                .tips_at(t)
                .iter()
                .map(|b| b.index() as u32)
                .collect();
            assert_eq!(cols.tips_at(t), expect.as_slice(), "{}: slot {t}", sc.name);
        }
    }
}

#[test]
fn scenario_strategies_respect_the_delta_axioms_on_the_reference_engine() {
    // The Δ-window clamp invariant, checked through the fork axioms: run
    // scenario strategies on the reference engine and validate the
    // extracted fork against (F1)–(F3) + (F4Δ). No release lag, schedule
    // or latency profile can break them, because both engines clamp
    // honest deliveries into [slot, slot + Δ].
    let config = SimConfig {
        honest_nodes: 5,
        adversarial_stake: 0.3,
        active_slot_coeff: 0.3,
        delta: 3,
        slots: 200,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::PrivateWithholding,
    };
    for (lag, net) in [
        (0usize, NetworkSchedule::EdgeOfWindow),
        (7, NetworkSchedule::Immediate),
        (
            2,
            NetworkSchedule::Burst {
                period: 9,
                width: 4,
            },
        ),
        (12, NetworkSchedule::Jitter { salt: 3 }),
    ] {
        let profile = NodeProfile::uniform().with_latency(vec![5, 0, 1, 8, 2]);
        let mut strategy = LaggedWithholding::new(lag, net, profile);
        let sim = Simulation::run_with(&config, 17, &mut strategy);
        assert_eq!(
            sim.fork().validate_against_axioms(),
            Ok(()),
            "lag {lag} / {net:?} broke the Δ axioms"
        );
    }
}

#[test]
fn streaming_mode_retains_nothing_but_loses_nothing() {
    // Metrics and settlement index from a streaming run (no per-slot
    // traces) must equal the trace-retaining run's, and the user sink
    // must see the same observation stream the internal accumulator does.
    let config = SimConfig {
        honest_nodes: 8,
        adversarial_stake: 0.4,
        active_slot_coeff: 0.3,
        delta: 2,
        slots: 2_000,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::PrivateWithholding,
    };
    let schedule = ColumnarSchedule::sample(
        config.honest_nodes,
        config.adversarial_stake,
        config.active_slot_coeff,
        config.slots,
        23,
    );
    let mut s1 = config.strategy.instantiate();
    let traced = ColumnarSimulation::run_with_schedule(&config, &schedule, s1.as_mut());
    let mut s2 = config.strategy.instantiate();
    let mut sink = MetricsAccumulator::new();
    let (metrics, index) =
        ColumnarSimulation::run_streaming(&config, &schedule, s2.as_mut(), &mut sink);
    assert_eq!(&metrics, traced.metrics());
    assert_eq!(&index, traced.divergence_index());
    assert_eq!(sink.max_slot_divergence(), metrics.max_slot_divergence);
}

#[test]
fn long_horizon_fingerprints_reproduce() {
    // The 10⁵-slot withholding execution and the 2·10⁴-slot scenario
    // presets, pinned in testutil.
    golden::assert_scenario_fingerprints();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Columnar ≡ reference on random configurations.
    #[test]
    fn random_configs_are_bit_identical(
        nodes in 1usize..9,
        stake in 0usize..5,
        f in 1usize..7,
        delta in 0usize..4,
        slots in 20usize..220,
        strategy_idx in 0usize..3,
        tie in 0usize..2,
        seed in 0u64..1_000,
    ) {
        let config = SimConfig {
            honest_nodes: nodes,
            adversarial_stake: stake as f64 / 10.0,
            active_slot_coeff: f as f64 / 10.0,
            delta,
            slots,
            tie_break: if tie == 0 { TieBreak::AdversarialOrder } else { TieBreak::Consistent },
            strategy: Strategy::ALL[strategy_idx],
        };
        assert_bit_identical(&config, seed, &format!("{config:?}"));
    }
}
