//! Property-based tests (proptest) over random characteristic strings:
//! every equivalence the paper proves becomes a machine-checked law.

use multihonest::adversary::{is_canonical, OptimalAdversary};
use multihonest::catalan::{is_catalan_naive, CatalanAnalysis};
use multihonest::chars::{CharString, Reduction, SemiString, Symbol};
use multihonest::fork::generate::{self, GenerateConfig};
use multihonest::fork::ReachAnalysis;
use multihonest::margin::recurrence;
use proptest::prelude::*;

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    prop_oneof![
        Just(Symbol::UniqueHonest),
        Just(Symbol::MultiHonest),
        Just(Symbol::Adversarial),
    ]
}

fn arb_string(max_len: usize) -> impl Strategy<Value = CharString> {
    prop::collection::vec(arb_symbol(), 0..=max_len).prop_map(CharString::from_symbols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Catalan slots via the walk scan equal the literal interval
    /// definition.
    #[test]
    fn catalan_scan_equals_naive(w in arb_string(40)) {
        let cat = CatalanAnalysis::new(&w);
        for s in 1..=w.len() {
            prop_assert_eq!(cat.is_catalan(s), is_catalan_naive(&w, s));
        }
    }

    /// Theorem 3 ∘ Lemma 1: for uniquely honest slots,
    /// UVP-via-margin ⇔ Catalan.
    #[test]
    fn uvp_margin_equals_catalan(w in arb_string(32)) {
        let cat = CatalanAnalysis::new(&w);
        for s in 1..=w.len() {
            if w.get(s) == Symbol::UniqueHonest {
                prop_assert_eq!(recurrence::has_uvp(&w, s), cat.is_catalan(s));
            }
        }
    }

    /// Theorem 6: A* builds canonical forks.
    #[test]
    fn astar_is_canonical(w in arb_string(24)) {
        let fork = OptimalAdversary::build(&w);
        prop_assert!(fork.validate().is_ok());
        prop_assert!(is_canonical(&fork));
    }

    /// Proposition 1 (upper bound): no randomly generated fork beats the
    /// recurrence margins.
    #[test]
    fn random_forks_bounded_by_recurrence(w in arb_string(16), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fork = generate::close(&generate::random_fork(&w, &mut rng, GenerateConfig::default()));
        let ra = ReachAnalysis::new(&fork);
        prop_assert!(ra.rho() <= recurrence::rho(&w));
        let margins = ra.relative_margins();
        prop_assert_eq!(margins.len(), w.len() + 1);
        for (cut, &margin) in margins.iter().enumerate() {
            prop_assert!(margin <= recurrence::relative_margin(&w, cut));
        }
    }

    /// Monotonicity: upgrading any symbol (h→H→A) never decreases reach,
    /// margin, or destroys a settlement violation.
    #[test]
    fn adversarial_upgrades_are_monotone(w in arb_string(24)) {
        for up in multihonest::chars::order::covers(&w) {
            prop_assert!(recurrence::rho(&up) >= recurrence::rho(&w));
            for cut in 0..=w.len() {
                prop_assert!(
                    recurrence::relative_margin(&up, cut)
                        >= recurrence::relative_margin(&w, cut)
                );
            }
            for s in 1..=w.len() {
                if recurrence::violates_settlement(&w, s, 2) {
                    prop_assert!(recurrence::violates_settlement(&up, s, 2));
                }
            }
        }
    }

    /// Equation (1): a slot with the UVP inside the window settles it.
    #[test]
    fn uvp_in_window_settles(w in arb_string(32)) {
        for s in 1..=w.len() {
            for k in 1..=w.len().saturating_sub(s) {
                let window_has_uvp =
                    (s..s + k).any(|t| t <= w.len() && recurrence::has_uvp(&w, t));
                if window_has_uvp {
                    prop_assert!(
                        recurrence::is_slot_settled(&w, s, k),
                        "slot {} k {} in {}", s, k, w
                    );
                }
            }
        }
    }

    /// Fact 6 ⇔ balanced forks: when µ_x(y) ≥ 0, the canonical fork can
    /// be padded into an x-balanced fork; when µ_x(y) < 0, no generated
    /// fork is x-balanced.
    #[test]
    fn negative_margin_forbids_balance(w in arb_string(14), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fork = generate::random_fork(&w, &mut rng, GenerateConfig::default());
        for cut in 0..=w.len() {
            if recurrence::relative_margin(&w, cut) < 0 {
                prop_assert!(!multihonest::fork::balanced::is_x_balanced(&fork, cut));
            }
        }
    }

    /// Pinching preserves the fork axioms whenever it applies: depths are
    /// untouched and only depth-(d+1) edges are redirected.
    #[test]
    fn pinch_preserves_axioms(w in arb_string(12), seed in any::<u64>()) {
        use multihonest::fork::pinch::pinch;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fork = generate::random_fork(&w, &mut rng, GenerateConfig::default());
        for u in fork.vertices() {
            let target_depth = fork.depth(u) + 1;
            let applicable = fork
                .vertices()
                .filter(|v| fork.depth(*v) == target_depth)
                .all(|v| fork.label(v) > fork.label(u));
            if applicable {
                let pinched = pinch(&fork, u);
                prop_assert!(pinched.validate().is_ok());
                prop_assert_eq!(pinched.vertex_count(), fork.vertex_count());
                prop_assert_eq!(pinched.height(), fork.height());
            }
        }
    }

    /// Theorem 9 (constructive fragment): whatever
    /// `balanced_fork_from_divergence` returns is a valid, x-balanced
    /// fork at the returned cut.
    #[test]
    fn divergence_yields_balanced_forks(w in arb_string(12), seed in any::<u64>()) {
        use multihonest::fork::pinch::balanced_fork_from_divergence;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fork = generate::random_fork(&w, &mut rng, GenerateConfig::default());
        for k in 0..4usize {
            if let Some((cut, bal)) = balanced_fork_from_divergence(&fork, k) {
                prop_assert!(bal.validate().is_ok());
                prop_assert!(multihonest::fork::balanced::is_x_balanced(&bal, cut));
            }
        }
    }

    /// The reduction map ρ_Δ preserves slot counts and demotes
    /// monotonically in Δ.
    #[test]
    fn reduction_monotone_in_delta(
        symbols in prop::collection::vec(0u8..4, 0..40),
        delta in 0usize..6,
    ) {
        use multihonest::chars::SemiSymbol;
        let w: SemiString = symbols
            .iter()
            .map(|b| match b {
                0 => SemiSymbol::Empty,
                1 => SemiSymbol::UniqueHonest,
                2 => SemiSymbol::MultiHonest,
                _ => SemiSymbol::Adversarial,
            })
            .collect();
        let smaller = Reduction::new(delta).apply(&w);
        let larger = Reduction::new(delta + 1).apply(&w);
        prop_assert_eq!(smaller.len(), w.count_nonempty());
        prop_assert_eq!(larger.len(), smaller.len());
        // Larger Δ is pointwise more adversarial.
        prop_assert!(multihonest::chars::order::le(smaller.reduced(), larger.reduced()));
    }
}
