//! Repo-level coverage of the campaign sweep orchestrator through the
//! facade crate: frozen aggregate pins, end-to-end grid behavior, and
//! the adversarial-dominance sanity the paper's evaluation relies on.

use multihonest::sweep::{campaign_report, report_csv, run_campaign, RunOptions};
use multihonest_testutil::golden;

/// The frozen 4-cell campaign pins: seed sharding, the arena-reused
/// columnar engine, the settlement index and the commutative aggregate
/// fold all reproduce exactly — through the 2-worker stealing executor.
#[test]
fn campaign_aggregates_reproduce() {
    golden::assert_campaign_pins();
}

/// End-to-end over the pin spec: the report orders cells by index,
/// matches the grid axes, and withholding dominates honest play on the
/// same Δ and stake profile.
#[test]
fn pinned_campaign_report_is_coherent() {
    let spec = golden::campaign_pin_spec();
    let outcome = run_campaign(&spec, &RunOptions::default()).unwrap();
    let report = campaign_report(&spec, &outcome);
    assert_eq!(report.total_cells, 4);
    assert_eq!(report.completed_cells, 4);
    assert_eq!(report.spec_fingerprint, golden::CAMPAIGN_SPEC_PIN);
    let indices: Vec<u64> = report.cells.iter().map(|c| c.cell).collect();
    assert_eq!(indices, vec![0, 1, 2, 3]);

    // Strategy-major, profile-minor cell order: honest/uniform,
    // honest/zipf, withhold/uniform, withhold/zipf.
    assert_eq!(report.cells[0].strategy, "honest");
    assert_eq!(report.cells[0].profile, "uniform");
    assert_eq!(report.cells[1].profile, "zipf");
    assert_eq!(report.cells[2].strategy, "withhold-lag4");

    // Withholding only ever adds adversarial depth: on each stake
    // profile it must violate settlement at least as often as honest
    // play at the smallest k.
    for profile in 0..2 {
        let honest = &report.cells[profile].settlement[0];
        let withhold = &report.cells[2 + profile].settlement[0];
        assert!(
            withhold.violating_executions >= honest.violating_executions,
            "withholding weaker than honest play on profile {profile}"
        );
    }

    // CSV shape: header + cells × ks rows.
    assert_eq!(report_csv(&report).lines().count(), 1 + 4 * 2);
}
