//! The batch law: [`BatchExecution`] is a pure amortization of
//! independent streaming runs. For every seed, the batched trial output
//! (metrics, settlement index, degradation ledger) must be identical to
//! a standalone [`ColumnarSimulation::run_streaming_faults`] over a
//! freshly sampled schedule — for any batch size, under fault plans,
//! and regardless of the arena history the batch driver has accumulated
//! (a short horizon after a long one reuses the same buffers).

use multihonest::scenario::{
    BatchExecution, ColumnarSchedule, ColumnarSimulation, LeaderProbs, TrialOutput,
};
use multihonest::sim::{FaultDirective, FaultPlan, SimConfig, Strategy, TieBreak};

const SEEDS: [u64; 6] = [3, 11, 29, 42, 77, 104];

fn cfg(strategy: Strategy, slots: usize) -> SimConfig {
    SimConfig {
        honest_nodes: 6,
        adversarial_stake: 0.25,
        active_slot_coeff: 0.3,
        delta: 2,
        slots,
        tie_break: TieBreak::AdversarialOrder,
        strategy,
    }
}

fn stakes(config: &SimConfig) -> Vec<f64> {
    let share = (1.0 - config.adversarial_stake) / config.honest_nodes as f64;
    vec![share; config.honest_nodes]
}

/// One independent trial: fresh arena, freshly sampled schedule, fresh
/// strategy — the unbatched ground truth of the law.
fn independent(config: &SimConfig, plan: &FaultPlan, seed: u64) -> TrialOutput {
    let schedule = ColumnarSchedule::sample_weighted(
        &stakes(config),
        config.adversarial_stake,
        config.active_slot_coeff,
        config.slots,
        seed,
    );
    let mut strategy = config.strategy.instantiate();
    let (metrics, divergence, ledger) = ColumnarSimulation::run_streaming_faults(
        config,
        &schedule,
        strategy.as_mut(),
        plan,
        &mut (),
    );
    TrialOutput {
        seed,
        metrics,
        divergence,
        ledger,
    }
}

/// Runs `SEEDS` through one batch driver in sub-batches of `batch_size`
/// and collects every output.
fn batched(config: &SimConfig, plan: &FaultPlan, batch_size: usize) -> Vec<TrialOutput> {
    let probs = LeaderProbs::weighted(
        &stakes(config),
        config.adversarial_stake,
        config.active_slot_coeff,
    );
    let mut batch = BatchExecution::new();
    let mut outputs = Vec::new();
    for group in SEEDS.chunks(batch_size) {
        batch.run(
            config,
            &probs,
            plan,
            group.iter().copied(),
            |_| config.strategy.instantiate(),
            |out| outputs.push(out),
        );
    }
    outputs
}

fn assert_law(config: &SimConfig, plan: &FaultPlan) {
    let truth: Vec<TrialOutput> = SEEDS
        .iter()
        .map(|&seed| independent(config, plan, seed))
        .collect();
    for batch_size in [1, 2, SEEDS.len()] {
        let got = batched(config, plan, batch_size);
        assert_eq!(got, truth, "batch size {batch_size}");
    }
}

#[test]
fn batching_equals_independent_runs_withholding() {
    assert_law(
        &cfg(Strategy::PrivateWithholding, 1500),
        &FaultPlan::default(),
    );
}

#[test]
fn batching_equals_independent_runs_balance() {
    assert_law(&cfg(Strategy::BalanceAttack, 1200), &FaultPlan::default());
}

#[test]
fn batching_equals_independent_runs_under_faults() {
    let plan = FaultPlan::new()
        .with(FaultDirective::Crash {
            node: 1,
            at: 100,
            recover_slot: 400,
        })
        .with(FaultDirective::Partition {
            groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
            start: 600,
            heal_slot: 750,
        });
    assert_law(&cfg(Strategy::PrivateWithholding, 1500), &plan);
}

/// Arena-history independence: a short horizon executed right after a
/// much longer one through the same driver must match a fresh run —
/// the short-after-long regression guard on [`ExecutionArena`] reuse
/// (stale tail state in any column would surface here).
///
/// [`ExecutionArena`]: multihonest::scenario::ExecutionArena
#[test]
fn short_horizon_after_long_is_identical() {
    let long = cfg(Strategy::PrivateWithholding, 20_000);
    let short = cfg(Strategy::PrivateWithholding, 800);
    let plan = FaultPlan::default();
    let probs = LeaderProbs::weighted(
        &stakes(&long),
        long.adversarial_stake,
        long.active_slot_coeff,
    );
    let mut batch = BatchExecution::new();
    let mut sink = Vec::new();
    batch.run(
        &long,
        &probs,
        &plan,
        [7u64],
        |_| long.strategy.instantiate(),
        |out| sink.push(out),
    );
    sink.clear();
    batch.run(
        &short,
        &probs,
        &plan,
        SEEDS.iter().copied(),
        |_| short.strategy.instantiate(),
        |out| sink.push(out),
    );
    let truth: Vec<TrialOutput> = SEEDS
        .iter()
        .map(|&seed| independent(&short, &plan, seed))
        .collect();
    assert_eq!(sink, truth);
}
