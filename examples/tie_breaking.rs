//! The consistent tie-breaking rule (axiom A0′, Theorem 2): consistency
//! with **zero** uniquely honest slots.
//!
//! ```bash
//! cargo run -p multihonest-examples --release --example tie_breaking
//! ```
//!
//! In the bivalent regime (`p_h = 0`) every honest slot has concurrent
//! leaders. No previous analysis gives any guarantee here; Theorem 2 shows
//! consistent tie-breaking restores the optimal e^{−Θ(k)} error. This
//! example shows all three views:
//!
//! * the analytic Bound-2 tail (consecutive Catalan slots);
//! * Monte-Carlo frequencies of the Bound-2 failure event;
//! * protocol simulations under both tie-breaking rules.

use multihonest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epsilon = 0.4;
    // Bivalent condition: p_h = 0, p_H = (1+ε)/2, p_A = (1−ε)/2.
    let cond = BernoulliCondition::new(epsilon, 0.0)?;
    println!("== consistent tie-breaking (Theorem 2), p_h = 0 ==");
    println!(
        "p_H = {:.2}, p_A = {:.2}; every honest slot is multiply honest\n",
        cond.p_multi_honest(),
        cond.p_adversarial()
    );

    let b2 = Bound2::new(epsilon)?;
    let mc = MonteCarlo::new(cond, 20_000, 11);
    println!("  k | Bound-2 tail | MC: no consecutive Catalan pair in window");
    for k in [25usize, 50, 100, 200] {
        let analytic = b2.tail(k);
        let est = mc.no_consecutive_catalan_in_window(3 * k, k, k);
        println!("{k:4} | {analytic:12.3e} | {:.4}", est.frequency());
    }

    // Protocol simulations: identical seeds, only the tie rule differs.
    println!("\nbalance attack vs tie-breaking rule (10 runs each):");
    let base = SimConfig {
        honest_nodes: 10,
        adversarial_stake: 0.25,
        active_slot_coeff: 0.6, // frequent concurrent leaders
        delta: 0,
        slots: 1_500,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::BalanceAttack,
    };
    for tie in [TieBreak::AdversarialOrder, TieBreak::Consistent] {
        let mut total_div = 0usize;
        let mut worst = 0usize;
        for seed in 0..10 {
            let sim = Simulation::run(
                &SimConfig {
                    tie_break: tie,
                    ..base
                },
                seed,
            );
            let d = sim.metrics().max_slot_divergence;
            total_div += d;
            worst = worst.max(d);
        }
        println!(
            "  {:?}: mean max-divergence {:.1}, worst {}",
            tie,
            total_div as f64 / 10.0,
            worst
        );
    }
    println!("\nconsistent tie-breaking collapses the adversary's ability to");
    println!("keep two chains balanced off concurrent honest leaders.");
    Ok(())
}
