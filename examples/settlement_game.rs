//! The optimal online adversary `A*` in action (paper Figure 4).
//!
//! ```bash
//! cargo run -p multihonest-examples --release --example settlement_game
//! ```
//!
//! Samples characteristic strings, lets `A*` build its canonical fork,
//! verifies canonicity (Theorem 6) against the Theorem-5 recurrences, and
//! prints the margin trace showing exactly which slots stay unsettled.

use multihonest::margin::recurrence;
use multihonest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cond = BernoulliCondition::new(0.15, 0.35)?;
    let mut rng = StdRng::seed_from_u64(2026);

    println!("== optimal adversary A* (Figure 4) ==");
    println!(
        "sampling w ~ (ε = {:.2}, p_h = {:.2})-Bernoulli condition\n",
        cond.epsilon(),
        cond.p_unique_honest()
    );

    for trial in 0..3 {
        let w = cond.sample(&mut rng, 30);
        let fork = OptimalAdversary::build(&w);
        let canonical = is_canonical(&fork);
        println!("trial {trial}: w = {w}");
        println!(
            "  fork: {} vertices, height {}, canonical: {canonical}",
            fork.vertex_count(),
            fork.height()
        );
        assert!(canonical, "Theorem 6 violated?!");

        // Margin trace from the genesis split: positions where µ ≥ 0 are
        // the horizons at which slot 1 remains unsettled.
        let trace = recurrence::margin_trace(&w, 0);
        let unsettled: Vec<usize> = trace
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &m)| m >= 0)
            .map(|(i, _)| i)
            .collect();
        println!("  µ_ε trace: {trace:?}");
        println!("  horizons with µ ≥ 0 (slot-1 settlement at risk): {unsettled:?}");

        // Catalan view of the same string.
        let cat = CatalanAnalysis::new(&w);
        println!(
            "  Catalan slots: {:?} (uniquely honest: {:?})\n",
            cat.catalan_slots(),
            cat.uniquely_honest_catalan_slots()
        );
    }

    // Monte-Carlo: how often does the optimal adversary defeat k-settlement?
    let mc = MonteCarlo::new(cond, 20_000, 7);
    println!("Monte-Carlo settlement violations (|x| = 100 prefix):");
    println!("   k | frequency | exact DP");
    let exact = ExactSettlement::new(cond);
    for k in [5usize, 10, 20, 40] {
        let est = mc.settlement_violation(100, k);
        let dp = exact.violation_probabilities_finite_prefix(100, &[k])[0];
        let (lo, hi) = est.wilson_interval(1.96);
        println!(
            "{k:4} | {:9.5} [{lo:.5}, {hi:.5}] | {dp:9.5}",
            est.frequency()
        );
    }
    Ok(())
}
