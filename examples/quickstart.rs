//! Quickstart: how long must a client wait for settlement?
//!
//! ```bash
//! cargo run -p multihonest-examples --release --example quickstart
//! ```
//!
//! Given a stake split and a leader-election profile, this example prints
//! the exact settlement-failure probabilities (paper Table 1's quantity),
//! the analytic Theorem-1 bound, and the wait times needed for common
//! failure targets.

use multihonest::ConsistencyAnalyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deployment facing a 30% adversary where 80% of honest slots have
    // a single leader (the rest have concurrent honest leaders).
    let adversarial_stake = 0.30;
    let unique_fraction = 0.80;
    let analyzer = ConsistencyAnalyzer::from_stake(adversarial_stake, unique_fraction)?;
    let cond = analyzer.condition();

    println!("== multihonest quickstart ==");
    println!(
        "parameters: p_h = {:.3}, p_H = {:.3}, p_A = {:.3} (ε = {:.3})",
        cond.p_unique_honest(),
        cond.p_multi_honest(),
        cond.p_adversarial(),
        cond.epsilon()
    );

    let report = analyzer.threshold_report();
    println!(
        "thresholds: this paper = {}, Praos/Genesis = {}, Sleepy/SnowWhite = {}",
        report.optimal, report.praos_genesis, report.sleepy_snow_white
    );

    println!("\n k | exact failure prob | Theorem-1 bound");
    let ks = [20usize, 50, 100, 200, 400];
    let exact = analyzer.settlement_failure_exact_many(&ks);
    for (k, e) in ks.iter().zip(&exact) {
        let bound = analyzer.settlement_failure_bound(*k)?;
        println!("{k:4} | {e:18.3e} | {bound:14.3e}");
    }

    println!("\nwait times (exact; the DP is the paper's O(T³) algorithm):");
    for target in [1e-3, 1e-6, 1e-9] {
        match analyzer.settlement_horizon(target, 600) {
            Some(k) => println!("  failure ≤ {target:7.0e} → wait {k} slots"),
            None => println!("  failure ≤ {target:7.0e} → more than 600 slots"),
        }
    }
    Ok(())
}
