//! Canonical-fork margin statistics at long horizons: the Monte-Carlo
//! margin estimator driven by the incremental `A*` engine, cross-checked
//! against the exact settlement DP.
//!
//! ```bash
//! cargo run --example canonical_margins --release
//! ```

use multihonest::adversary::CanonicalMonteCarlo;
use multihonest::chars::BernoulliCondition;
use multihonest::margin::ExactSettlement;

fn main() -> Result<(), multihonest::chars::DistributionError> {
    // 40% adversarial stake, 40% of slots uniquely honest.
    let cond = BernoulliCondition::new(0.2, 0.4)?;
    let mc = CanonicalMonteCarlo::new(cond, 200, 42);

    println!("canonical forks over w ~ D^n (ε = 0.2, p_h = 0.4, 200 trials):\n");
    for len in [1_000usize, 10_000] {
        let s = mc.summary(len);
        // Every trial cross-validates Theorem 6: the A*-built fork's ρ
        // equals the Theorem-5 recurrence.
        assert_eq!(s.rho_agreements, s.trials);
        println!(
            "n = {len:>6}: mean ρ = {:.2}, max ρ = {}, mean µ_ε(w) = {:.1}, \
             µ_ε(w) ≥ 0 on {}/{} trials, mean |F| = {:.0} vertices",
            s.mean_rho, s.max_rho, s.mean_margin, s.nonneg_margin_trials, s.trials, s.mean_vertices
        );
    }

    // The estimator against the exact DP: Pr[µ_ε(w) ≥ 0] for |w| = k is
    // the k-settlement violation probability with an empty prefix.
    let k = 60;
    let exact = ExactSettlement::new(cond).violation_probabilities_finite_prefix(0, &[k])[0];
    let mc_short = CanonicalMonteCarlo::new(cond, 4_000, 7);
    let s = mc_short.summary(k);
    let freq = s.nonneg_margin_trials as f64 / s.trials as f64;
    println!(
        "\nPr[µ_ε(w) ≥ 0] at |w| = {k}: exact DP {exact:.4} vs canonical-fork MC {freq:.4} \
         ({} trials)",
        s.trials
    );
    Ok(())
}
