//! Example support crate; examples live in sibling .rs files.
