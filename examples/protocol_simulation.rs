//! Full protocol simulation: honest baseline, private withholding, and
//! the balance attack, in synchronous and Δ-delayed networks.
//!
//! ```bash
//! cargo run -p multihonest-examples --release --example protocol_simulation
//! ```
//!
//! Every execution's fork is validated against the paper's axioms, and
//! observed consistency metrics are printed next to the analytic
//! expectations.

use multihonest::prelude::*;

fn main() {
    let base = SimConfig {
        honest_nodes: 10,
        adversarial_stake: 0.30,
        active_slot_coeff: 0.25,
        delta: 0,
        slots: 2_000,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::Honest,
    };

    println!("== longest-chain PoS protocol simulation ==");
    println!(
        "{} honest nodes, adversary stake {:.0}%, f = {:.2}, {} slots\n",
        base.honest_nodes,
        base.adversarial_stake * 100.0,
        base.active_slot_coeff,
        base.slots
    );

    println!(
        "{:<22} {:>2} | {:>7} {:>8} {:>9} {:>10}",
        "strategy", "Δ", "growth", "quality", "max-div", "k=20 viol"
    );
    for strategy in Strategy::ALL {
        for delta in [0usize, 3] {
            let cfg = SimConfig {
                strategy,
                delta,
                ..base
            };
            let sim = Simulation::run(&cfg, 1234);
            let fork = sim.fork();
            fork.validate_against_axioms()
                .expect("every execution satisfies the fork axioms");
            let m = sim.metrics();
            // Count slots whose 20-settlement was observably violated
            // (one O(slots) pass over the divergence index).
            let violated = sim.count_violating_slots(20, cfg.slots.saturating_sub(25));
            println!(
                "{:<22} {delta:>2} | {:>7.3} {:>8.3} {:>9} {:>10}",
                strategy.to_string(),
                m.chain_growth(),
                m.chain_quality(),
                m.max_slot_divergence,
                violated
            );
        }
    }

    // Compare against theory on the same leader-election parameters: the
    // Δ=0 execution's reduced characteristic string obeys a Bernoulli
    // condition whose exact DP bounds any real adversary.
    let sim = Simulation::run(
        &SimConfig {
            strategy: Strategy::PrivateWithholding,
            ..base
        },
        99,
    );
    let semi = sim.characteristic_string();
    let reduced = Reduction::new(0).apply(&semi);
    let w = reduced.reduced();
    println!(
        "\nextracted characteristic string: {} active slots of {} ({} h / {} H / {} A)",
        w.len(),
        base.slots,
        w.count_unique_honest(),
        w.count_multi_honest(),
        w.count_adversarial()
    );
    let cat = CatalanAnalysis::new(w);
    println!(
        "Catalan density: {:.3} (uniquely honest Catalan slots: {})",
        cat.catalan_density(),
        cat.uniquely_honest_catalan_slots().len()
    );
}
