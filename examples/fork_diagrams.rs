//! Regenerates the paper's fork diagrams (Figures 1–3) as Graphviz DOT.
//!
//! ```bash
//! cargo run -p multihonest-examples --release --example fork_diagrams
//! # pipe a single figure into Graphviz:
//! cargo run -p multihonest-examples --example fork_diagrams -- figure2 | dot -Tpng -o figure2.png
//! ```
//!
//! Each fork is validated against the axioms (F1)–(F4) and annotated with
//! its reach/margin analysis before printing.

use multihonest::fork::{balanced, dot, figures};
use multihonest::fork::{Fork, ReachAnalysis};
use multihonest::margin::recurrence;

fn describe(name: &str, fork: &Fork) {
    eprintln!("--- {name}: w = {} ---", fork.string());
    fork.validate().expect("figure forks satisfy the axioms");
    eprintln!(
        "vertices: {}, height: {}, max-length tines: {}",
        fork.vertex_count(),
        fork.height(),
        fork.max_length_tines().len()
    );
    eprintln!("balanced: {}", balanced::is_balanced(fork));
    eprintln!("slot divergence: {}", balanced::slot_divergence(fork));
    if fork.is_closed() {
        let ra = ReachAnalysis::new(fork);
        eprintln!(
            "ρ(F) = {} (recurrence ρ(w) = {})",
            ra.rho(),
            recurrence::rho(fork.string())
        );
        eprintln!("µ_ε(F) = {}", ra.margin());
    } else {
        eprintln!("(fork is not closed; reach analysis needs a closed fork)");
    }
}

type FigureBuilder = fn() -> Fork;

fn main() {
    let which = std::env::args().nth(1);
    let all: [(&str, FigureBuilder); 3] = [
        ("figure1", figures::figure1),
        ("figure2", figures::figure2),
        ("figure3", figures::figure3),
    ];
    for (name, build) in all {
        if let Some(w) = &which {
            if w != name {
                continue;
            }
        }
        let fork = build();
        describe(name, &fork);
        println!("{}", dot::to_dot(&fork, name));
    }
}
